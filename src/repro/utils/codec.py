"""Lossless JSON codec for registered dataclasses, tuples, and arrays.

Grew out of the experiment artifact cache (PR 2) and now also backs the
serving layer's monitor snapshots, so it lives in :mod:`repro.utils`
where both :mod:`repro.core` and :mod:`repro.experiments` can use it
without layering inversions. :mod:`repro.experiments.reporting` re-exports
every name for backward compatibility.

Encoding rules (see :func:`to_jsonable`):

- registered dataclasses → ``{"__dataclass__": name, "fields": {...}}``;
- tuples → ``{"__tuple__": [...]}`` (decode back as tuples);
- numpy arrays → ``{"__ndarray__": {"dtype", "data"}}``; numpy scalars
  unwrap to Python scalars;
- dict/list/str/int/float/bool/None pass through (dict keys must be str).

Floats survive a ``json.dumps``/``loads`` round trip bit-exactly (JSON
encodes them via ``repr``), which is what makes both cached experiment
artifacts and monitor snapshots reproducible to the bit.
"""

from __future__ import annotations

import dataclasses

import numpy as np

#: Registered dataclass types, by class name — the JSON codec's universe.
_RESULT_TYPES: dict = {}


def register_result_type(cls):
    """Register ``cls`` (a dataclass) with the JSON codec; returns it.

    Names must be unique: payload tags are bare class names, so two
    different classes sharing one would make decoding ambiguous (and
    silently corrupt monitor snapshots). Re-registering the *same* class
    is a no-op, so module re-imports stay safe.
    """
    if not dataclasses.is_dataclass(cls):
        raise TypeError(f"{cls!r} is not a dataclass")
    existing = _RESULT_TYPES.get(cls.__name__)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"a different dataclass named {cls.__name__!r} is already "
            f"registered with the result codec ({existing.__module__}."
            f"{existing.__qualname__}); rename one of them"
        )
    _RESULT_TYPES[cls.__name__] = cls
    return cls


def registered_result_types() -> dict:
    """Name → class for every codec-registered result dataclass."""
    return dict(_RESULT_TYPES)


def to_jsonable(obj):
    """Encode ``obj`` into JSON-serializable primitives, losslessly.

    Handles registered dataclasses (tagged with ``__dataclass__``),
    tuples (tagged, so they decode back as tuples), numpy arrays and
    scalars, and plain dict/list/str/int/float/bool/None.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        name = type(obj).__name__
        if name not in _RESULT_TYPES:
            raise TypeError(
                f"{name} is not registered with the result codec; "
                "decorate it with @register_result_type"
            )
        return {
            "__dataclass__": name,
            "fields": {
                f.name: to_jsonable(getattr(obj, f.name))
                for f in dataclasses.fields(obj)
            },
        }
    if isinstance(obj, np.ndarray):
        return {
            "__ndarray__": {"dtype": str(obj.dtype), "data": obj.tolist()},
        }
    if isinstance(obj, (np.integer, np.floating, np.bool_)):
        return obj.item()
    if isinstance(obj, tuple):
        return {"__tuple__": [to_jsonable(v) for v in obj]}
    if isinstance(obj, list):
        return [to_jsonable(v) for v in obj]
    if isinstance(obj, dict):
        encoded = {}
        for key, value in obj.items():
            if not isinstance(key, str):
                raise TypeError(f"JSON object keys must be str, got {key!r}")
            encoded[key] = to_jsonable(value)
        return encoded
    if obj is None or isinstance(obj, (str, int, float, bool)):
        return obj
    raise TypeError(f"cannot encode {type(obj).__name__} for the result codec")


def from_jsonable(obj):
    """Inverse of :func:`to_jsonable`."""
    if isinstance(obj, dict):
        if "__dataclass__" in obj:
            name = obj["__dataclass__"]
            cls = _RESULT_TYPES.get(name)
            if cls is None:
                raise TypeError(f"unknown result dataclass {name!r} in payload")
            fields = {k: from_jsonable(v) for k, v in obj["fields"].items()}
            return cls(**fields)
        if "__ndarray__" in obj:
            spec = obj["__ndarray__"]
            return np.asarray(spec["data"], dtype=np.dtype(spec["dtype"]))
        if "__tuple__" in obj:
            return tuple(from_jsonable(v) for v in obj["__tuple__"])
        return {k: from_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, list):
        return [from_jsonable(v) for v in obj]
    return obj
