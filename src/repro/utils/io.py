"""Small filesystem helpers shared by the snapshot layers."""

from __future__ import annotations

import json
import os


def atomic_write_json(payload: dict, path: str) -> None:
    """Write ``payload`` to ``path`` as JSON, atomically.

    Temp file + rename, with a per-PID temp name so concurrent
    checkpointers to the same path never interleave writes into one temp
    file — the pattern the experiment artifact cache established.
    """
    tmp_path = f"{path}.{os.getpid()}.tmp"
    try:
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(tmp_path, path)
    finally:
        if os.path.exists(tmp_path):
            os.remove(tmp_path)


def read_json(path: str) -> dict:
    """Read one JSON document from ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)
