"""Small filesystem helpers shared by the snapshot layers."""

from __future__ import annotations

import json
import os


def atomic_write_json(payload: dict, path: str) -> None:
    """Write ``payload`` to ``path`` as JSON, atomically and durably.

    Temp file + rename, with a per-PID temp name so concurrent
    checkpointers to the same path never interleave writes into one temp
    file — the pattern the experiment artifact cache established.

    The temp file is flushed and fsynced before the rename, and the
    containing directory is fsynced after it (POSIX only): without the
    file fsync, a power loss after ``os.replace`` can leave the *target*
    pointing at data the kernel never wrote back — a truncated or empty
    snapshot with the final name; without the directory fsync, the
    rename itself may not survive. Readers therefore always see either
    the complete old JSON or the complete new JSON.
    """
    tmp_path = f"{path}.{os.getpid()}.tmp"
    try:
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
        _fsync_directory(os.path.dirname(os.path.abspath(path)))
    finally:
        if os.path.exists(tmp_path):
            os.remove(tmp_path)


def _fsync_directory(dir_path: str) -> None:
    """Flush a directory entry (the rename) to disk; no-op off POSIX."""
    if os.name != "posix":  # pragma: no cover - Windows cannot open dirs
        return
    dir_fd = os.open(dir_path or ".", os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


def read_json(path: str) -> dict:
    """Read one JSON document from ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)
