"""Newline-delimited JSON framing for the network serving layer.

The network front-end (:mod:`repro.serve.net`) speaks NDJSON over TCP:
one frame per line, each line one JSON document. :func:`encode_frame`
runs :func:`repro.utils.codec.to_jsonable` over the whole document, so
codec-registered dataclasses (raw domain units, fire records,
:class:`~repro.core.runtime.MonitoringReport` s) can be embedded
directly and cross the wire losslessly, floats bit-exact included.

:func:`decode_frame` deliberately does **not** run ``from_jsonable``:
several payloads (service snapshots, suite files) are *stored* in their
codec-encoded form and must round-trip untouched — a wholesale decode
would materialize their inner tags at the wrong layer. Receivers decode
the specific fields that carry live objects (``raw``, ``fires``,
``report``) with :func:`~repro.utils.codec.from_jsonable` themselves.

Frames are bounded (:data:`MAX_FRAME_BYTES` by default) so one
malformed or hostile line cannot buffer unbounded memory; both ends
surface oversize or unparseable lines as :class:`FrameError`, which the
server maps to a typed ``bad-request`` error payload rather than a
dropped connection.
"""

from __future__ import annotations

import json

from repro.utils.codec import to_jsonable

#: Default per-frame byte bound (newline included) on both ends.
MAX_FRAME_BYTES = 8 * 1024 * 1024


class FrameError(ValueError):
    """A line that is not one well-formed, size-bounded JSON document."""


def encode_frame(obj) -> bytes:
    """One NDJSON frame: codec-encoded ``obj``, compact, newline-terminated.

    ``to_jsonable`` passes plain dict/list/scalar structures through
    unchanged (already-encoded payloads stay as-is) and encodes any
    registered dataclasses, tuples, and arrays found inside.
    """
    try:
        text = json.dumps(to_jsonable(obj), separators=(",", ":"))
    except TypeError as exc:
        raise FrameError(f"frame payload is not codec-encodable: {exc}") from exc
    return text.encode("utf-8") + b"\n"


def decode_frame(line: "bytes | str", *, max_bytes: int = MAX_FRAME_BYTES):
    """Parse one received line into a plain JSON structure.

    Accepts the line with or without its trailing newline. Raises
    :class:`FrameError` on oversize input, undecodable bytes, or
    malformed JSON. Codec tags inside are left encoded (see the module
    docstring for why).
    """
    if isinstance(line, str):
        line = line.encode("utf-8")
    if len(line) > max_bytes:
        raise FrameError(
            f"frame of {len(line)} bytes exceeds the {max_bytes}-byte bound"
        )
    try:
        return json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"not a JSON frame: {exc}") from exc
