"""Deterministic random-number handling.

Every stochastic component in the library accepts either an integer seed or
a :class:`numpy.random.Generator`. Centralizing the coercion here keeps the
convention uniform and makes experiments exactly reproducible.
"""

from __future__ import annotations

import numpy as np

SeedLike = "int | np.random.Generator | None"


def as_generator(seed: "int | np.random.Generator | None") -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` (fresh OS entropy), an integer seed, or an existing
        generator (returned unchanged, so callers can share a stream).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def generator_state(gen: np.random.Generator) -> dict:
    """JSON-encodable snapshot of a generator's exact stream position.

    The payload is the bit generator's ``state`` dict (plain strings and
    Python ints, which JSON preserves at arbitrary precision), so a
    restored generator continues the stream bit-for-bit — the property
    model snapshots rely on to make resumed fine-tuning identical to an
    uninterrupted run.
    """
    return gen.bit_generator.state


def generator_from_state(state: dict) -> np.random.Generator:
    """Rebuild a generator from :func:`generator_state` output."""
    name = state.get("bit_generator")
    bit_cls = getattr(np.random, str(name), None)
    if bit_cls is None or not isinstance(bit_cls, type):
        raise ValueError(f"unknown bit generator {name!r} in generator state")
    bit = bit_cls()
    bit.state = state
    return np.random.Generator(bit)


def spawn_generators(seed: "int | np.random.Generator | None", n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent generators from one seed.

    Uses :meth:`numpy.random.Generator.spawn` so the child streams are
    statistically independent regardless of how many draws each consumes —
    important when experiments run strategies side by side and must not let
    one strategy's sampling perturb another's.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    return list(as_generator(seed).spawn(n))
