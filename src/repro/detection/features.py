"""Hand-crafted per-proposal features.

Thirteen cheap statistics describing a proposal's geometry, photometry,
and contrast against its surroundings — enough signal for the logistic
scorer to separate vehicles from glare, reflections, and redundant split
boxes once it has seen labeled examples of each.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.box2d import Box2D

#: Number of features produced by :func:`proposal_features`.
N_FEATURES = 17

#: Human-readable names, index-aligned with the feature vector.
#:
#: Absolute photometry (``mean_intensity``, ``p90_intensity``) is tied to
#: the illumination the scorer was trained under and transfers poorly
#: across the day→night shift; the ratio features (``contrast_ratio``,
#: ``relative_std``) are illumination-invariant and transfer well. The mix
#: is intentional: it gives a bootstrapped detector *partial* transfer to
#: the deployment distribution (the paper's pretrained SSD sits at 34.4
#: mAP on night-street) while leaving headroom for fine-tuning.
#: ``left_continuation``/``right_continuation`` measure whether bright
#: content continues past the box's vertical edges — near zero for a real
#: object (background outside), large for a *split* proposal that cuts
#: through a vehicle. They make duplicate rejection learnable, but only
#: from training data that actually contains wide, split-prone vehicles.
FEATURE_NAMES = (
    "width",
    "height",
    "aspect",
    "log_area",
    "mean_intensity",
    "max_intensity",
    "std_intensity",
    "ring_contrast",
    "contrast_ratio",
    "relative_std",
    "fill_fraction",
    "center_x_norm",
    "center_y_norm",
    "vertical_gradient",
    "p90_intensity",
    "left_continuation",
    "right_continuation",
)


def _region(image: np.ndarray, x1: int, y1: int, x2: int, y2: int) -> np.ndarray:
    h, w = image.shape
    return image[max(y1, 0) : min(y2, h), max(x1, 0) : min(x2, w)]


def proposal_features(image: np.ndarray, boxes: list) -> np.ndarray:
    """Feature matrix ``(n, N_FEATURES)`` for proposals on one image."""
    img = np.asarray(image, dtype=np.float64)
    if img.ndim != 2:
        raise ValueError(f"image must be 2-D grayscale, got shape {img.shape}")
    h, w = img.shape
    out = np.zeros((len(boxes), N_FEATURES), dtype=np.float64)

    for i, box in enumerate(boxes):
        x1, y1 = int(round(box.x1)), int(round(box.y1))
        x2, y2 = int(round(box.x2)), int(round(box.y2))
        inside = _region(img, x1, y1, x2, y2)
        if inside.size == 0:
            inside = np.zeros((1, 1))
        margin = 3
        around = _region(img, x1 - margin, y1 - margin, x2 + margin, y2 + margin)
        inside_sum = float(inside.sum())
        ring_pixels = around.size - inside.size
        ring_mean = (
            (float(around.sum()) - inside_sum) / ring_pixels if ring_pixels > 0 else 0.0
        )
        mean_in = float(inside.mean())
        rows = inside.mean(axis=1)
        vertical_gradient = float(rows[-1] - rows[0]) if rows.size > 1 else 0.0
        fill = float(np.mean(inside > ring_mean + 0.03))
        left_strip = _region(img, x1 - 3, y1, x1, y2)
        right_strip = _region(img, x2, y1, x2 + 3, y2)
        left_cont = float(left_strip.mean()) - ring_mean if left_strip.size else 0.0
        right_cont = float(right_strip.mean()) - ring_mean if right_strip.size else 0.0

        out[i] = (
            box.width,
            box.height,
            box.width / max(box.height, 1e-6),
            np.log(max(box.area, 1.0)),
            mean_in,
            float(inside.max()),
            float(inside.std()),
            mean_in - ring_mean,
            mean_in / (ring_mean + 0.02),
            float(inside.std()) / (mean_in + 0.02),
            fill,
            (box.x1 + box.x2) / (2.0 * w),
            (box.y1 + box.y2) / (2.0 * h),
            vertical_gradient,
            float(np.percentile(inside, 90)),
            left_cont,
            right_cont,
        )
    return out
