"""Class-agnostic region proposals.

Proposals are connected components of the background-subtracted image,
plus *split* sub-boxes for wide components. The splits are deliberate:
real single-shot detectors emit multiple anchors per large object, and
when the scorer cannot reject the redundant ones the output shows several
highly overlapping boxes on one vehicle — the paper's ``multibox`` error
(Figure 7). Here the redundant candidates exist by construction and it is
the *learned* scorer's job to suppress them; an undertrained scorer
reproduces the multibox failure for the same reason SSD does.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from repro.geometry.box2d import Box2D


@dataclass(frozen=True)
class ProposalConfig:
    """Parameters of the proposal generator."""

    background_scale: int = 25  # size of the local-mean background filter
    threshold: float = 0.045  # residual brightness that counts as foreground
    min_area: int = 12  # discard components smaller than this (pixels)
    min_side: float = 3.0  # discard components thinner than this
    split_aspect: float = 2.2  # width/height ratio beyond which to emit splits
    split_fraction: float = 0.66  # width fraction of each split box
    max_proposals: int = 40  # cap per frame (largest components first)


def generate_proposals_flagged(
    image: np.ndarray, config: "ProposalConfig | None" = None
) -> tuple:
    """Propose candidate boxes for one image, flagging split variants.

    Returns ``(boxes, is_split)``: class-agnostic
    :class:`~repro.geometry.box2d.Box2D` plus a parallel boolean array
    marking the redundant split sub-boxes. Deterministic given the image.
    """
    cfg = config if config is not None else ProposalConfig()
    img = np.asarray(image, dtype=np.float64)
    if img.ndim != 2:
        raise ValueError(f"image must be 2-D grayscale, got shape {img.shape}")

    background = ndimage.uniform_filter(img, size=cfg.background_scale)
    residual = img - background
    mask = residual > cfg.threshold
    labeled, n_components = ndimage.label(mask)
    if n_components == 0:
        return [], np.zeros(0, dtype=bool)

    slices = ndimage.find_objects(labeled)
    components = []
    for sl in slices:
        if sl is None:
            continue
        ys, xs = sl
        width = xs.stop - xs.start
        height = ys.stop - ys.start
        if width * height < cfg.min_area:
            continue
        if min(width, height) < cfg.min_side:
            continue
        components.append((width * height, xs.start, ys.start, xs.stop, ys.stop))

    components.sort(reverse=True)
    proposals: list = []
    flags: list = []
    for _, x1, y1, x2, y2 in components[: cfg.max_proposals]:
        base = Box2D(float(x1), float(y1), float(x2), float(y2))
        proposals.append(base)
        flags.append(False)
        if base.width / base.height >= cfg.split_aspect:
            split_w = cfg.split_fraction * base.width
            proposals.append(Box2D(base.x1, base.y1, base.x1 + split_w, base.y2))
            proposals.append(Box2D(base.x2 - split_w, base.y1, base.x2, base.y2))
            flags.extend((True, True))
    return proposals, np.asarray(flags, dtype=bool)


def generate_proposals(image: np.ndarray, config: "ProposalConfig | None" = None) -> list:
    """Propose candidate boxes for one image (without split flags)."""
    boxes, _ = generate_proposals_flagged(image, config)
    return boxes
