"""A trainable 2-D object detector (the SSD stand-in).

Pipeline: class-agnostic region proposals from background-subtracted
connected components (:mod:`repro.detection.proposals`), hand-crafted
per-proposal features (:mod:`repro.detection.features`), a multinomial
logistic scorer over ``background + K`` classes, confidence thresholding,
and per-class NMS (:mod:`repro.detection.detector`).

The detector is trained on labeled frames exactly like the paper
fine-tunes SSD: proposals matched to ground truth become positives of the
matched class, the rest become background. More labeled frames → a better
scorer → fewer flicker/appear/multibox errors, which is the causal chain
the paper's active-learning and weak-supervision results rely on.
"""

from repro.detection.detector import Detector, DetectorConfig
from repro.detection.features import N_FEATURES, proposal_features
from repro.detection.proposals import ProposalConfig, generate_proposals

__all__ = [
    "Detector",
    "DetectorConfig",
    "N_FEATURES",
    "ProposalConfig",
    "generate_proposals",
    "proposal_features",
]
