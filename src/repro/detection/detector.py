"""The trainable detector: proposals → features → scorer → NMS."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.detection.features import N_FEATURES, proposal_features
from repro.detection.proposals import (
    ProposalConfig,
    generate_proposals,
    generate_proposals_flagged,
)
from repro.geometry.box2d import Box2D
from repro.geometry.iou import iou_matrix
from repro.geometry.nms import non_max_suppression
from repro.ml.linear import LogisticRegression
from repro.ml.mlp import MLPClassifier
from repro.ml.preprocess import Standardizer
from repro.utils.rng import as_generator


@dataclass(frozen=True)
class DetectorConfig:
    """Detector hyperparameters.

    ``nms_iou`` is deliberately lenient (0.62): single-shot detectors with
    imperfect duplicate suppression keep redundant overlapping boxes when
    the scorer rates them all highly — the precondition for the paper's
    ``multibox`` error. A well-trained scorer learns to reject split
    proposals instead, shrinking multibox fires with training.
    """

    classes: tuple = ("car", "truck")
    score_threshold: float = 0.32
    nms_iou: float = 0.62
    #: Proposals with IoU ≥ ``match_iou`` against a ground-truth box are
    #: trained as positives of that class — except *split* variants, which
    #: are always background: a box that cuts through an object is a
    #: duplicate, not a detection. Split rejection is therefore learnable,
    #: but only from labeled frames containing split-prone wide vehicles.
    match_iou: float = 0.5
    #: ``"linear"`` (default) scores proposals with multinomial logistic
    #: regression; ``"mlp"`` swaps in a small ReLU network (used by the
    #: scorer ablation bench).
    scorer_type: str = "linear"
    hidden: tuple = (24,)
    learning_rate: float = 0.1
    l2: float = 5e-4
    epochs: int = 200
    fine_tune_epochs: int = 60
    #: Fine-tuning uses a smaller step than from-scratch training, as
    #: deep-learning fine-tuning does (the paper fine-tunes SSD at 5e-6 vs
    #: the usual ~1e-3 training rate), so adaptation accumulates over
    #: rounds instead of saturating on the first one.
    fine_tune_lr: float = 0.02
    proposal: ProposalConfig = field(default_factory=ProposalConfig)

    def __post_init__(self) -> None:
        if self.scorer_type not in ("mlp", "linear"):
            raise ValueError(
                f"scorer_type must be 'mlp' or 'linear', got {self.scorer_type!r}"
            )


class Detector:
    """Proposal-scoring detector with SSD-like training semantics.

    - :meth:`fit` (re)trains the class scorer from labeled frames
      (ground-truth boxes per frame).
    - :meth:`fine_tune` continues training from the current weights —
      what the paper's active-learning rounds and weak-supervision passes
      do to SSD.
    - :meth:`detect` runs the full pipeline on one image.
    """

    def __init__(
        self,
        config: "DetectorConfig | None" = None,
        seed: "int | np.random.Generator | None" = None,
    ) -> None:
        self.config = config if config is not None else DetectorConfig()
        self._rng = as_generator(seed)
        self.standardizer = Standardizer()
        # Class 0 is background; classes k>0 map to config.classes[k-1].
        if self.config.scorer_type == "mlp":
            self.scorer = MLPClassifier(
                n_features=N_FEATURES,
                hidden=self.config.hidden,
                n_classes=len(self.config.classes) + 1,
                learning_rate=self.config.learning_rate,
                l2=self.config.l2,
                seed=self._rng.spawn(1)[0],
            )
        else:
            self.scorer = LogisticRegression(
                n_classes=len(self.config.classes) + 1,
                n_features=N_FEATURES,
                learning_rate=self.config.learning_rate,
                l2=self.config.l2,
                seed=self._rng.spawn(1)[0],
            )
        self.is_fitted = False

    def get_state(self) -> dict:
        """JSON-encodable snapshot for the model registry / retrain workers.

        Carries scorer weights, optimizer moments, normalization, and
        both generator positions, so ``set_state`` + :meth:`fine_tune` is
        bit-identical to fine-tuning the original object.
        """
        from repro.utils.rng import generator_state

        return {
            "kind": "detector",
            "scorer_type": self.config.scorer_type,
            "scorer": self.scorer.get_state(),
            "standardizer": self.standardizer.get_state(),
            "rng": generator_state(self._rng),
            "is_fitted": self.is_fitted,
        }

    def set_state(self, payload: dict) -> None:
        """Restore :meth:`get_state` output into a same-configured detector."""
        from repro.utils.rng import generator_from_state

        if payload.get("kind") != "detector":
            raise ValueError(
                f"not a Detector state payload (kind={payload.get('kind')!r})"
            )
        if payload["scorer_type"] != self.config.scorer_type:
            raise ValueError(
                f"state is for a {payload['scorer_type']!r} scorer, this "
                f"detector uses {self.config.scorer_type!r}"
            )
        self.scorer.set_state(payload["scorer"])
        self.standardizer.set_state(payload["standardizer"])
        self._rng = generator_from_state(payload["rng"])
        self.is_fitted = bool(payload["is_fitted"])

    def clone(self) -> "Detector":
        """Deep copy (weights and normalization included)."""
        other = Detector(self.config, seed=self._rng.spawn(1)[0])
        other.scorer = self.scorer.clone()
        other.standardizer.mean_ = (
            None if self.standardizer.mean_ is None else self.standardizer.mean_.copy()
        )
        other.standardizer.scale_ = (
            None if self.standardizer.scale_ is None else self.standardizer.scale_.copy()
        )
        other.is_fitted = self.is_fitted
        return other

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def _build_training_set(
        self, images: list, ground_truths: list
    ) -> tuple[np.ndarray, np.ndarray]:
        """Proposals + GT boxes per frame, matched to GT for labels."""
        feature_blocks = []
        label_blocks = []
        class_index = {name: k + 1 for k, name in enumerate(self.config.classes)}
        for image, gt_boxes in zip(images, ground_truths):
            candidates, is_split = generate_proposals_flagged(image, self.config.proposal)
            # Ground-truth boxes join the candidate set so every labeled
            # object contributes at least one positive example.
            candidates = candidates + [Box2D(b.x1, b.y1, b.x2, b.y2) for b in gt_boxes]
            is_split = np.concatenate([is_split, np.zeros(len(gt_boxes), dtype=bool)])
            if not candidates:
                continue
            labels = np.zeros(len(candidates), dtype=np.intp)
            if gt_boxes:
                iou = iou_matrix(candidates, gt_boxes)
                best = np.argmax(iou, axis=1)
                best_iou = iou[np.arange(len(candidates)), best]
                for i, (j, value) in enumerate(zip(best, best_iou)):
                    if value >= self.config.match_iou and not is_split[i]:
                        labels[i] = class_index[gt_boxes[int(j)].label]
            feature_blocks.append(proposal_features(image, candidates))
            label_blocks.append(labels)
        if not feature_blocks:
            raise ValueError("no trainable proposals found in the labeled frames")
        return np.concatenate(feature_blocks), np.concatenate(label_blocks)

    @staticmethod
    def _class_balanced_weights(labels: np.ndarray, n_classes: int) -> np.ndarray:
        counts = np.bincount(labels, minlength=n_classes).astype(np.float64)
        weights = np.where(counts > 0, labels.shape[0] / np.maximum(counts, 1.0), 0.0)
        # Soften: full inverse-frequency over-weights rare classes.
        weights = np.sqrt(weights)
        return weights[labels]

    def fit(self, images: list, ground_truths: list) -> "Detector":
        """Train from scratch on labeled frames (freezes normalization)."""
        features, labels = self._build_training_set(images, ground_truths)
        self.standardizer.fit(features)
        x = self.standardizer.transform(features)
        weights = self._class_balanced_weights(labels, self.scorer.n_classes)
        self.scorer.fit(
            x, labels, epochs=self.config.epochs, sample_weight=weights, reset=True
        )
        self.is_fitted = True
        return self

    def fine_tune(
        self, images: list, ground_truths: list, *, epochs: "int | None" = None
    ) -> "Detector":
        """Continue training from current weights on (possibly weak) labels."""
        if not self.is_fitted:
            raise RuntimeError("fine_tune requires a fitted detector; call fit first")
        features, labels = self._build_training_set(images, ground_truths)
        x = self.standardizer.transform(features)
        weights = self._class_balanced_weights(labels, self.scorer.n_classes)
        self.scorer.fit(
            x,
            labels,
            epochs=epochs if epochs is not None else self.config.fine_tune_epochs,
            sample_weight=weights,
            reset=False,
            learning_rate=self.config.fine_tune_lr,
        )
        return self

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def detect(self, image: np.ndarray) -> list:
        """Detect objects in one image → scored, labeled boxes."""
        if not self.is_fitted:
            raise RuntimeError("detector is not fitted; call fit first")
        candidates = generate_proposals(image, self.config.proposal)
        if not candidates:
            return []
        features = self.standardizer.transform(proposal_features(image, candidates))
        probs = self.scorer.predict_proba(features)
        # Best non-background class per proposal.
        fg = probs[:, 1:]
        best = np.argmax(fg, axis=1)
        scores = fg[np.arange(len(candidates)), best]
        keep = scores >= self.config.score_threshold
        if not np.any(keep):
            return []
        kept_boxes = [candidates[i] for i in np.flatnonzero(keep)]
        kept_scores = scores[keep]
        kept_classes = best[keep]
        order = non_max_suppression(
            kept_boxes, kept_scores, self.config.nms_iou, class_ids=kept_classes
        )
        return [
            Box2D(
                kept_boxes[i].x1,
                kept_boxes[i].y1,
                kept_boxes[i].x2,
                kept_boxes[i].y2,
                label=self.config.classes[kept_classes[i]],
                score=float(kept_scores[i]),
            )
            for i in order
        ]

    def detect_frames(self, images: list) -> list:
        """Run :meth:`detect` over a list of images."""
        return [self.detect(image) for image in images]
