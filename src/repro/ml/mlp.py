"""A small fully-connected classifier with one or more hidden layers."""

from __future__ import annotations

import numpy as np

from repro.ml.losses import cross_entropy, cross_entropy_grad, one_hot, softmax
from repro.ml.optim import Adam
from repro.utils.rng import as_generator


class MLPClassifier:
    """ReLU MLP trained with mini-batch Adam.

    Stands in for the convolutional ECG network of Rajpurkar et al. (2019):
    the paper fine-tunes that network during active learning and weak
    supervision; we fine-tune this MLP over engineered window features
    (:mod:`repro.domains.ecg`), preserving the training dynamics the
    experiments measure.
    """

    def __init__(
        self,
        n_features: int,
        hidden: tuple = (32,),
        n_classes: int = 2,
        *,
        learning_rate: float = 1e-2,
        l2: float = 1e-4,
        batch_size: int = 128,
        seed: "int | np.random.Generator | None" = None,
    ) -> None:
        if n_features < 1:
            raise ValueError(f"n_features must be >= 1, got {n_features}")
        if n_classes < 2:
            raise ValueError(f"n_classes must be >= 2, got {n_classes}")
        if not hidden or any(h < 1 for h in hidden):
            raise ValueError(f"hidden sizes must be positive, got {hidden!r}")
        self.n_features = n_features
        self.hidden = tuple(int(h) for h in hidden)
        self.n_classes = n_classes
        self.learning_rate = learning_rate
        self.l2 = l2
        self.batch_size = batch_size
        self._rng = as_generator(seed)
        self._optimizer = Adam(learning_rate=learning_rate)
        self.weights: list[np.ndarray] = []
        self.biases: list[np.ndarray] = []
        self._init_params()

    def _init_params(self) -> None:
        sizes = (self.n_features, *self.hidden, self.n_classes)
        self.weights = []
        self.biases = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            # He initialization, appropriate for ReLU activations.
            scale = np.sqrt(2.0 / fan_in)
            self.weights.append(self._rng.normal(0.0, scale, size=(fan_in, fan_out)))
            self.biases.append(np.zeros(fan_out, dtype=np.float64))
        self._optimizer.reset()

    def get_state(self) -> dict:
        """JSON-encodable snapshot of everything training depends on.

        Parameters, optimizer moments, and the generator position all
        travel, so ``set_state`` + ``fit(reset=False)`` is bit-identical
        to continuing the original object — whether the restore happens
        in this process, in a retraining worker, or after a snapshot file
        round trip.
        """
        from repro.utils.rng import generator_state

        return {
            "arch": [self.n_features, list(self.hidden), self.n_classes],
            "weights": [w.copy() for w in self.weights],
            "biases": [b.copy() for b in self.biases],
            "optimizer": self._optimizer.get_state(),
            "rng": generator_state(self._rng),
        }

    def set_state(self, payload: dict) -> None:
        """Restore :meth:`get_state` output into a same-shaped classifier."""
        from repro.utils.rng import generator_from_state

        arch = [self.n_features, list(self.hidden), self.n_classes]
        got = [payload["arch"][0], list(payload["arch"][1]), payload["arch"][2]]
        if got != arch:
            raise ValueError(f"MLP state is for architecture {got}, this model is {arch}")
        # np.array copies: restored parameters must never alias the
        # payload (a registry keeps payloads immutable across training).
        self.weights = [np.array(w, dtype=np.float64) for w in payload["weights"]]
        self.biases = [np.array(b, dtype=np.float64) for b in payload["biases"]]
        self._optimizer.set_state(payload["optimizer"])
        self._rng = generator_from_state(payload["rng"])

    def clone(self) -> "MLPClassifier":
        """Deep copy with identical parameters and fresh optimizer state."""
        other = MLPClassifier(
            self.n_features,
            self.hidden,
            self.n_classes,
            learning_rate=self.learning_rate,
            l2=self.l2,
            batch_size=self.batch_size,
            seed=self._rng.spawn(1)[0],
        )
        other.weights = [w.copy() for w in self.weights]
        other.biases = [b.copy() for b in self.biases]
        return other

    def _forward(self, x: np.ndarray) -> tuple[np.ndarray, list[np.ndarray]]:
        """Return (logits, activations); activations[i] is layer i's input."""
        activations = [x]
        h = x
        for w, b in zip(self.weights[:-1], self.biases[:-1]):
            h = np.maximum(h @ w + b, 0.0)
            activations.append(h)
        logits = h @ self.weights[-1] + self.biases[-1]
        return logits, activations

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Class probabilities ``(n, k)``."""
        x = self._check_features(features)
        logits, _ = self._forward(x)
        return softmax(logits)

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Argmax class indices ``(n,)``."""
        return np.argmax(self.predict_proba(features), axis=1)

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        *,
        epochs: int = 50,
        sample_weight: "np.ndarray | None" = None,
        reset: bool = False,
        learning_rate: "float | None" = None,
    ) -> "MLPClassifier":
        """Train on integer labels ``(n,)`` or soft targets ``(n, k)``.

        ``reset=False`` (default) continues from the current parameters —
        fine-tuning, which is what the paper's retraining experiments do.
        ``learning_rate`` optionally overrides the step size for this call
        only (fine-tuning uses a smaller step than from-scratch training).
        """
        x = self._check_features(features)
        n = x.shape[0]
        if n == 0:
            raise ValueError("cannot fit on zero samples")
        labels = np.asarray(labels)
        targets = labels if labels.ndim == 2 else one_hot(labels, self.n_classes)
        if targets.shape != (n, self.n_classes):
            raise ValueError(f"targets shape {targets.shape} != ({n}, {self.n_classes})")
        weight = None
        if sample_weight is not None:
            weight = np.asarray(sample_weight, dtype=np.float64)
            if weight.shape != (n,):
                raise ValueError(f"sample_weight shape {weight.shape} != ({n},)")
        if reset:
            self._init_params()
        previous_lr = self._optimizer.learning_rate
        if learning_rate is not None:
            self._optimizer.learning_rate = learning_rate

        batch = min(self.batch_size, n)
        for _ in range(epochs):
            order = self._rng.permutation(n)
            for start in range(0, n, batch):
                idx = order[start : start + batch]
                self._step(x[idx], targets[idx], weight[idx] if weight is not None else None)
        self._optimizer.learning_rate = previous_lr
        return self

    def _step(self, xb: np.ndarray, yb: np.ndarray, wb: "np.ndarray | None") -> None:
        logits, activations = self._forward(xb)
        probs = softmax(logits)
        delta = cross_entropy_grad(probs, yb, wb)
        grads_w: list[np.ndarray] = [np.zeros_like(w) for w in self.weights]
        grads_b: list[np.ndarray] = [np.zeros_like(b) for b in self.biases]
        for layer in range(len(self.weights) - 1, -1, -1):
            grads_w[layer] = activations[layer].T @ delta + self.l2 * self.weights[layer]
            grads_b[layer] = delta.sum(axis=0)
            if layer > 0:
                delta = (delta @ self.weights[layer].T) * (activations[layer] > 0)
        self._optimizer.step(self.weights + self.biases, grads_w + grads_b)

    def loss(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Mean cross-entropy on the given data."""
        return cross_entropy(self.predict_proba(features), labels)

    def _check_features(self, features: np.ndarray) -> np.ndarray:
        x = np.asarray(features, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.n_features:
            raise ValueError(f"expected (n, {self.n_features}) features, got {x.shape}")
        return x
