"""First-order optimizers operating on lists of parameter arrays."""

from __future__ import annotations

import numpy as np


class SGD:
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.0) -> None:
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be > 0, got {learning_rate}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.learning_rate = learning_rate
        self.momentum = momentum
        self._velocity: "list[np.ndarray] | None" = None

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        """Update ``params`` in place from ``grads``."""
        if self._velocity is None:
            self._velocity = [np.zeros_like(p) for p in params]
        for p, g, v in zip(params, grads, self._velocity):
            v *= self.momentum
            v -= self.learning_rate * g
            p += v

    def reset(self) -> None:
        """Clear optimizer state (e.g., before retraining from scratch)."""
        self._velocity = None

    def get_state(self) -> dict:
        """JSON-encodable snapshot of the momentum buffers."""
        return {
            "velocity": (
                None
                if self._velocity is None
                else [v.copy() for v in self._velocity]
            ),
        }

    def set_state(self, payload: dict) -> None:
        """Restore :meth:`get_state` output (inverse, bit-exact)."""
        velocity = payload["velocity"]
        self._velocity = (
            None
            if velocity is None
            else [np.array(v, dtype=np.float64) for v in velocity]
        )


class Adam:
    """Adam optimizer (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be > 0, got {learning_rate}")
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m: "list[np.ndarray] | None" = None
        self._v: "list[np.ndarray] | None" = None
        self._t = 0

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        """Update ``params`` in place from ``grads``."""
        if self._m is None or self._v is None:
            self._m = [np.zeros_like(p) for p in params]
            self._v = [np.zeros_like(p) for p in params]
        self._t += 1
        b1t = 1.0 - self.beta1**self._t
        b2t = 1.0 - self.beta2**self._t
        for p, g, m, v in zip(params, grads, self._m, self._v):
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * g * g
            p -= self.learning_rate * (m / b1t) / (np.sqrt(v / b2t) + self.eps)

    def reset(self) -> None:
        """Clear optimizer state (e.g., before retraining from scratch)."""
        self._m = None
        self._v = None
        self._t = 0

    def get_state(self) -> dict:
        """JSON-encodable snapshot of the moment buffers and step count.

        Fine-tuning continues from warm moments, so a model restored from
        a snapshot must resume with the exact buffers — otherwise the
        next retraining round diverges from an uninterrupted run.
        """
        return {
            "t": self._t,
            "m": None if self._m is None else [m.copy() for m in self._m],
            "v": None if self._v is None else [v.copy() for v in self._v],
        }

    def set_state(self, payload: dict) -> None:
        """Restore :meth:`get_state` output (inverse, bit-exact)."""
        self._t = int(payload["t"])
        m, v = payload["m"], payload["v"]
        # np.array copies: the moment buffers are updated in place, so
        # they must never alias the (immutable) payload arrays.
        self._m = None if m is None else [np.array(a, dtype=np.float64) for a in m]
        self._v = None if v is None else [np.array(a, dtype=np.float64) for a in v]
