"""A small, dependency-free ML stack used by the trainable substrates.

The paper's experiments fine-tune deep detectors (SSD, PointPillars) and an
ECG network. Offline, we replace those with feature-based models trained by
this stack: multinomial logistic regression and a small MLP optimized with
Adam. Both expose ``fit`` / ``predict_proba`` and accept sample weights so
the active-learning and weak-supervision harnesses can retrain them exactly
the way the paper retrains its networks (§5.4–§5.5).
"""

from repro.ml.linear import LogisticRegression
from repro.ml.losses import cross_entropy, cross_entropy_grad, one_hot
from repro.ml.mlp import MLPClassifier
from repro.ml.optim import Adam, SGD
from repro.ml.preprocess import Standardizer

__all__ = [
    "Adam",
    "SGD",
    "LogisticRegression",
    "MLPClassifier",
    "Standardizer",
    "cross_entropy",
    "cross_entropy_grad",
    "one_hot",
]
