"""Classification losses and label encoding."""

from __future__ import annotations

import numpy as np


def one_hot(labels: np.ndarray, n_classes: int) -> np.ndarray:
    """Encode integer labels ``(n,)`` as a one-hot matrix ``(n, k)``."""
    labels = np.asarray(labels, dtype=np.intp)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.size and (labels.min() < 0 or labels.max() >= n_classes):
        raise ValueError(
            f"labels out of range [0, {n_classes}): min={labels.min()}, max={labels.max()}"
        )
    out = np.zeros((labels.shape[0], n_classes), dtype=np.float64)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax with the max-subtraction stability trick."""
    z = np.asarray(logits, dtype=np.float64)
    z = z - z.max(axis=-1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=-1, keepdims=True)


def cross_entropy(
    probs: np.ndarray,
    labels: np.ndarray,
    sample_weight: "np.ndarray | None" = None,
) -> float:
    """Mean (optionally weighted) cross-entropy of predicted probabilities.

    ``labels`` may be integer class indices ``(n,)`` or soft targets
    ``(n, k)`` — soft targets are what weak supervision produces when a
    correction rule is uncertain.
    """
    p = np.clip(np.asarray(probs, dtype=np.float64), 1e-12, 1.0)
    labels = np.asarray(labels)
    if labels.ndim == 1:
        nll = -np.log(p[np.arange(p.shape[0]), labels.astype(np.intp)])
    else:
        nll = -(labels * np.log(p)).sum(axis=1)
    if sample_weight is None:
        return float(nll.mean())
    w = np.asarray(sample_weight, dtype=np.float64)
    total = w.sum()
    if total <= 0:
        raise ValueError("sample_weight sums to zero")
    return float((nll * w).sum() / total)


def cross_entropy_grad(
    probs: np.ndarray,
    targets: np.ndarray,
    sample_weight: "np.ndarray | None" = None,
) -> np.ndarray:
    """Gradient of mean cross-entropy w.r.t. the logits: ``(p - y) / n``.

    ``targets`` must already be one-hot or soft ``(n, k)``.
    """
    p = np.asarray(probs, dtype=np.float64)
    y = np.asarray(targets, dtype=np.float64)
    if p.shape != y.shape:
        raise ValueError(f"shape mismatch: probs {p.shape} vs targets {y.shape}")
    grad = p - y
    if sample_weight is not None:
        w = np.asarray(sample_weight, dtype=np.float64)
        grad = grad * (w / w.sum())[:, None] * p.shape[0]
    return grad / p.shape[0]
