"""Feature standardization."""

from __future__ import annotations

import numpy as np


class Standardizer:
    """Zero-mean, unit-variance feature scaling with frozen statistics.

    Statistics are estimated once on the fitting set and reused for all
    later transforms, so a model retrained mid-experiment keeps a stable
    input space (the convention deep-learning pipelines get from frozen
    input normalization).
    """

    def __init__(self) -> None:
        self.mean_: "np.ndarray | None" = None
        self.scale_: "np.ndarray | None" = None

    @property
    def is_fitted(self) -> bool:
        return self.mean_ is not None

    def fit(self, features: np.ndarray) -> "Standardizer":
        """Estimate per-feature mean and scale from ``(n, d)`` features."""
        arr = np.asarray(features, dtype=np.float64)
        if arr.ndim != 2:
            raise ValueError(f"features must be 2-D, got shape {arr.shape}")
        if arr.shape[0] == 0:
            raise ValueError("cannot fit a Standardizer on zero samples")
        self.mean_ = arr.mean(axis=0)
        std = arr.std(axis=0)
        # Constant features would otherwise divide by zero; map them to 1
        # so they standardize to exactly 0.
        self.scale_ = np.where(std > 1e-12, std, 1.0)
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        """Apply the fitted scaling to ``(n, d)`` features."""
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("Standardizer.transform called before fit")
        arr = np.asarray(features, dtype=np.float64)
        if arr.ndim != 2 or arr.shape[1] != self.mean_.shape[0]:
            raise ValueError(
                f"expected (n, {self.mean_.shape[0]}) features, got shape {arr.shape}"
            )
        return (arr - self.mean_) / self.scale_

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        return self.fit(features).transform(features)

    def get_state(self) -> dict:
        """JSON-encodable snapshot of the frozen statistics."""
        return {
            "mean": None if self.mean_ is None else self.mean_.copy(),
            "scale": None if self.scale_ is None else self.scale_.copy(),
        }

    def set_state(self, payload: dict) -> None:
        """Restore :meth:`get_state` output (inverse, bit-exact)."""
        mean, scale = payload["mean"], payload["scale"]
        self.mean_ = None if mean is None else np.array(mean, dtype=np.float64)
        self.scale_ = None if scale is None else np.array(scale, dtype=np.float64)
