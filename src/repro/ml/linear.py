"""Multinomial logistic regression trained with mini-batch Adam."""

from __future__ import annotations

import numpy as np

from repro.ml.losses import cross_entropy, cross_entropy_grad, one_hot, softmax
from repro.ml.optim import Adam
from repro.utils.rng import as_generator


class LogisticRegression:
    """Multinomial logistic regression with L2 regularization.

    Used as the proposal scorer inside both trainable detectors
    (:mod:`repro.detection`, :mod:`repro.lidar`). Supports warm-started
    incremental fitting (``fit`` with ``reset=False``), which is how the
    active-learning harness mimics fine-tuning a pretrained network.
    """

    def __init__(
        self,
        n_classes: int,
        n_features: int,
        *,
        learning_rate: float = 0.05,
        l2: float = 1e-4,
        batch_size: int = 256,
        seed: "int | np.random.Generator | None" = None,
    ) -> None:
        if n_classes < 2:
            raise ValueError(f"n_classes must be >= 2, got {n_classes}")
        if n_features < 1:
            raise ValueError(f"n_features must be >= 1, got {n_features}")
        self.n_classes = n_classes
        self.n_features = n_features
        self.learning_rate = learning_rate
        self.l2 = l2
        self.batch_size = batch_size
        self._rng = as_generator(seed)
        self.weights = np.zeros((n_features, n_classes), dtype=np.float64)
        self.bias = np.zeros(n_classes, dtype=np.float64)
        self._optimizer = Adam(learning_rate=learning_rate)

    def get_state(self) -> dict:
        """JSON-encodable snapshot of everything training depends on
        (parameters, optimizer moments, generator position) — see
        :meth:`repro.ml.mlp.MLPClassifier.get_state`."""
        from repro.utils.rng import generator_state

        return {
            "arch": [self.n_features, self.n_classes],
            "weights": self.weights.copy(),
            "bias": self.bias.copy(),
            "optimizer": self._optimizer.get_state(),
            "rng": generator_state(self._rng),
        }

    def set_state(self, payload: dict) -> None:
        """Restore :meth:`get_state` output into a same-shaped model."""
        from repro.utils.rng import generator_from_state

        arch = [self.n_features, self.n_classes]
        if list(payload["arch"]) != arch:
            raise ValueError(
                f"LogisticRegression state is for architecture "
                f"{list(payload['arch'])}, this model is {arch}"
            )
        # np.array copies: restored parameters must never alias the
        # payload (a registry keeps payloads immutable across training).
        self.weights = np.array(payload["weights"], dtype=np.float64)
        self.bias = np.array(payload["bias"], dtype=np.float64)
        self._optimizer.set_state(payload["optimizer"])
        self._rng = generator_from_state(payload["rng"])

    def clone(self) -> "LogisticRegression":
        """Deep copy of the model (parameters included, optimizer state reset)."""
        other = LogisticRegression(
            self.n_classes,
            self.n_features,
            learning_rate=self.learning_rate,
            l2=self.l2,
            batch_size=self.batch_size,
            seed=self._rng.spawn(1)[0],
        )
        other.weights = self.weights.copy()
        other.bias = self.bias.copy()
        return other

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Raw logits ``(n, k)``."""
        x = self._check_features(features)
        return x @ self.weights + self.bias

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Class probabilities ``(n, k)``."""
        return softmax(self.decision_function(features))

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Argmax class indices ``(n,)``."""
        return np.argmax(self.decision_function(features), axis=1)

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        *,
        epochs: int = 30,
        sample_weight: "np.ndarray | None" = None,
        reset: bool = True,
        learning_rate: "float | None" = None,
    ) -> "LogisticRegression":
        """Train with mini-batch Adam on integer or soft labels.

        Parameters
        ----------
        reset:
            When True, reinitialize parameters and optimizer state before
            training (training from scratch); when False, continue from the
            current parameters (fine-tuning).
        learning_rate:
            Optional override for this call only — fine-tuning passes use a
            smaller step than from-scratch training, as deep-learning
            fine-tuning does (the paper fine-tunes SSD at 5e-6).
        """
        x = self._check_features(features)
        n = x.shape[0]
        if n == 0:
            raise ValueError("cannot fit on zero samples")
        labels = np.asarray(labels)
        targets = labels if labels.ndim == 2 else one_hot(labels, self.n_classes)
        if targets.shape != (n, self.n_classes):
            raise ValueError(f"targets shape {targets.shape} != ({n}, {self.n_classes})")
        weight = None
        if sample_weight is not None:
            weight = np.asarray(sample_weight, dtype=np.float64)
            if weight.shape != (n,):
                raise ValueError(f"sample_weight shape {weight.shape} != ({n},)")

        if reset:
            self.weights = np.zeros_like(self.weights)
            self.bias = np.zeros_like(self.bias)
            self._optimizer.reset()
        previous_lr = self._optimizer.learning_rate
        if learning_rate is not None:
            self._optimizer.learning_rate = learning_rate

        batch = min(self.batch_size, n)
        for _ in range(epochs):
            order = self._rng.permutation(n)
            for start in range(0, n, batch):
                idx = order[start : start + batch]
                xb, yb = x[idx], targets[idx]
                wb = weight[idx] if weight is not None else None
                probs = softmax(xb @ self.weights + self.bias)
                grad_logits = cross_entropy_grad(probs, yb, wb)
                grad_w = xb.T @ grad_logits + self.l2 * self.weights
                grad_b = grad_logits.sum(axis=0)
                self._optimizer.step([self.weights, self.bias], [grad_w, grad_b])
        self._optimizer.learning_rate = previous_lr
        return self

    def loss(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Mean cross-entropy on the given data."""
        return cross_entropy(self.predict_proba(features), labels)

    def _check_features(self, features: np.ndarray) -> np.ndarray:
        x = np.asarray(features, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.n_features:
            raise ValueError(f"expected (n, {self.n_features}) features, got {x.shape}")
        return x
