"""The ``Domain`` protocol and registry: one serving contract, four workloads.

The paper's Figure 2 pitches model assertions as *one* runtime
abstraction shared across deployments, but the four domain packages each
grew a bespoke monitoring surface (``AVPipeline.observe_sample``,
``VideoPipeline.observe_frame``, ``TVNewsPipeline.observe_scenes``, the
ECG free functions). This module collapses them into a single contract a
serving layer can drive uniformly:

- :meth:`Domain.assertion_suite` — the domain's assertions as a
  declarative, pure-data :class:`~repro.core.spec.AssertionSuite`;
- :meth:`Domain.build_monitor` — a fresh :class:`~repro.core.runtime.OMG`
  runtime with the domain's assertions registered (by default, the
  compiled suite);
- :meth:`Domain.build_world` — a seeded, deterministic data source
  (synthetic world plus whatever bootstrapped models the domain needs);
- :meth:`Domain.iter_stream` — an unbounded iterator of *raw units*
  (a frame's detections, a fused AV sample, a news scene, an ECG
  record's window predictions) drawn from that world;
- :meth:`Domain.item_from_raw` — normalization of one raw unit into zero
  or more ``(outputs, timestamp)`` stream items the runtime ingests.

Domains register under a short name with :func:`register_domain`; the
four built-ins resolve lazily so importing the registry stays cheap:

>>> from repro.domains.registry import get_domain
>>> monitor = get_domain("video").build_monitor()
>>> monitor.database.names()
['multibox', 'flicker', 'appear']

:class:`~repro.serve.MonitorService` layers keyed multi-stream sessions,
batching, eviction, and snapshots on top of this contract.
"""

from __future__ import annotations

import abc
import importlib
import warnings
from typing import Any, Iterator, NamedTuple

from repro.core.runtime import OMG, MonitoringReport
from repro.core.spec import AssertionSuite, compile_suite


class MonitorRun(NamedTuple):
    """Result of an offline pipeline ``monitor`` pass.

    A named tuple so every pipeline's ``monitor`` has one return shape:
    ``run.report`` / ``run.items`` for new code, while existing
    ``report, items = pipeline.monitor(...)`` unpacking keeps working.
    """

    report: MonitoringReport
    items: list


class RawItem(NamedTuple):
    """One normalized stream item: model outputs plus its timestamp.

    ``timestamp=None`` lets the runtime default to the item index (one
    item per second), matching :meth:`repro.core.runtime.OMG.observe`.
    """

    outputs: list
    timestamp: "float | None" = None


class RetrainableModel(abc.ABC):
    """The fleet model behind a domain's streams, as the improvement loop
    sees it (see :mod:`repro.improve`).

    One instance serves every stream of a loop: it turns raw sensor
    *samples* (an ECG record's features, a traffic frame) into the *raw
    units* :meth:`Domain.item_from_raw` ingests, labels samples through
    the oracle or consistency-based weak supervision, fine-tunes on the
    accumulated labeled set, and snapshots its full training state so the
    :class:`~repro.improve.ModelRegistry` can version it and retraining
    can run bit-identically in a worker process.
    """

    #: Display name of :meth:`evaluate`'s unit (e.g. ``"accuracy%"``).
    metric_name: str = "metric"

    @abc.abstractmethod
    def predict_raw(self, sample: Any) -> Any:
        """Model outputs for one sensor sample, in the domain's raw-unit
        shape (consumable by :meth:`Domain.item_from_raw`)."""

    def uncertainty(self, sample: Any, raw: Any) -> float:
        """Least-confidence score for one predicted unit (higher = less
        confident); 0.0 when the domain has no confidence signal."""
        return 0.0

    @abc.abstractmethod
    def oracle_label(self, sample: Any) -> Any:
        """Ground-truth label for one sample (the human-oracle route)."""

    def weak_labels(self, samples: list, raws: "list | None" = None) -> list:
        """Consistency-propagated pseudo-labels (the weak-supervision
        route); ``None`` entries mean no pseudo-label for that sample.

        ``raws`` are the model outputs the samples streamed with (so the
        labels correct what the monitor actually saw); domains without a
        weak-supervision rule keep this default.
        """
        return [None] * len(samples)

    @abc.abstractmethod
    def fine_tune(self, examples: list) -> None:
        """Continue training on ``examples``: ``(sample, label)`` pairs
        accumulated by the labeling queue, oracle and weak mixed."""

    @abc.abstractmethod
    def evaluate(self) -> float:
        """Held-out metric of the current weights (``metric_name`` units)."""

    @abc.abstractmethod
    def get_state(self) -> dict:
        """JSON-encodable snapshot of everything retraining depends on
        (weights, optimizer state, generator positions)."""

    @abc.abstractmethod
    def set_state(self, payload: dict) -> None:
        """Restore :meth:`get_state` output — the hot-swap primitive."""


class Domain(abc.ABC):
    """One workload's serving contract (see the module docstring).

    Instances are lightweight and may be shared across streams: all
    per-stream mutable state lives in the opaque object returned by
    :meth:`new_state`, which the caller threads through
    :meth:`item_from_raw`. ``config`` is the domain's frozen config
    dataclass (each implementation defines its own); ``None`` means the
    implementation's defaults.
    """

    #: Registry name; filled in by :func:`register_domain`.
    name: str = ""

    def __init__(self, config: Any = None) -> None:
        self.config = config if config is not None else self.default_config()

    @classmethod
    def default_config(cls) -> Any:
        """The config used when none is given; ``None`` if configless."""
        return None

    def _config(self, config: Any) -> Any:
        return config if config is not None else self.config

    # -- contract ------------------------------------------------------
    def assertion_suite(self, config: Any = None) -> AssertionSuite:
        """This domain's assertions as a declarative, pure-data suite.

        The canonical source of the domain's assertion set: serialize it,
        diff it, ship it in a config, or hand an edited copy to
        :meth:`~repro.serve.MonitorService.apply_suite`. The default
        :meth:`build_monitor` compiles it, so overriding this method is
        all a new domain needs to plug its assertions into serving,
        snapshots, and the ``assertions`` CLI.
        """
        raise NotImplementedError(
            f"domain {self.name or type(self).__name__!r} declares no "
            "assertion suite; override assertion_suite() (preferred) or "
            "build_monitor()"
        )

    def build_monitor(self, config: Any = None) -> OMG:
        """A fresh runtime with this domain's assertions registered.

        Default: compile :meth:`assertion_suite` — bit-identical to the
        pre-spec hand-built monitors (``tests/domains/test_suites.py``).
        Domains with assertions that cannot be expressed as specs may
        override this directly.
        """
        return OMG(compile_suite(self.assertion_suite(config)))

    def legacy_monitor(self, config: Any = None) -> OMG:
        """Deprecated (this PR only): the pre-spec hand-built monitor.

        Produces the imperatively wired runtime the domain shipped before
        the declarative suite existed. Scheduled for removal; use
        :meth:`build_monitor`, which compiles the same assertion set from
        :meth:`assertion_suite`.
        """
        warnings.warn(
            f"legacy_monitor() is deprecated; domain {self.name!r} now "
            "compiles its declarative assertion_suite() — use "
            "build_monitor()",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._legacy_monitor(config)

    def _legacy_monitor(self, config: Any = None) -> OMG:
        """Hand-built monitor construction kept for the deprecation shim
        (and the suite-equivalence tests)."""
        raise NotImplementedError(
            f"domain {self.name or type(self).__name__!r} has no legacy "
            "hand-built monitor"
        )

    def build_pipeline(self, config: Any = None):
        """The domain's offline pipeline object, when it has one.

        Optional hook: experiments and examples use it where they need
        more than the bare runtime (assertion objects, ``to_stream``,
        judging helpers). Domains whose offline surface *is* the runtime
        (ecg) keep this default.
        """
        raise NotImplementedError(
            f"domain {self.name or type(self).__name__!r} has no offline "
            "pipeline; use build_monitor()"
        )

    @abc.abstractmethod
    def build_world(self, seed: int = 0) -> Any:
        """A seeded data source consumable by :meth:`iter_stream`.

        Deterministic: the same seed always yields the same raw-unit
        sequence, which is what lets a snapshot-resumed stream fast
        forward its world by replaying the units already consumed.
        """

    @abc.abstractmethod
    def iter_stream(self, world: Any) -> Iterator[Any]:
        """Yield raw units from a :meth:`build_world` source, unbounded."""

    @abc.abstractmethod
    def item_from_raw(self, raw: Any, state: Any = None) -> "list[RawItem]":
        """Normalize one raw unit into zero or more stream items.

        ``state`` is this stream's :meth:`new_state` object (the video
        domain's live tracker, the ECG domain's time offset); stateless
        domains ignore it.
        """

    # -- closed improvement loop (optional) ----------------------------
    def build_sensor(self, seed: int = 0) -> Any:
        """A seeded *model-free* sample source for the improvement loop.

        Unlike :meth:`build_world` (which bootstraps the demo model so
        :meth:`iter_stream` can decorate samples with predictions), a
        sensor yields undecorated samples; the loop's shared
        :class:`RetrainableModel` predicts on them, so every stream sees
        the *current* model version. Deterministic per seed, like worlds.
        """
        raise NotImplementedError(
            f"domain {self.name or type(self).__name__!r} has no sensor "
            "stream; it cannot drive an improvement loop"
        )

    def iter_samples(self, sensor: Any) -> Iterator[Any]:
        """Yield raw sensor samples from :meth:`build_sensor`, unbounded."""
        raise NotImplementedError(
            f"domain {self.name or type(self).__name__!r} has no sensor "
            "stream; it cannot drive an improvement loop"
        )

    def retrainable(
        self, seed: int = 0, *, bootstrap: bool = True
    ) -> RetrainableModel:
        """The domain's :class:`RetrainableModel` adapter.

        ``bootstrap=False`` skips pretraining (and data generation) and
        returns a bare, architecture-matched model shell — what retrain
        workers use before ``set_state`` overwrites the weights. Domains
        without a retrainable model (tvnews: "we were unable to access
        the training code") keep this default.
        """
        raise NotImplementedError(
            f"domain {self.name or type(self).__name__!r} has no "
            "retrainable model"
        )

    # -- per-stream adapter state --------------------------------------
    def new_state(self, config: Any = None) -> Any:
        """Fresh per-stream adaptation state; ``None`` when stateless."""
        return None

    def state_snapshot(self, state: Any) -> Any:
        """JSON-encodable form of ``state`` (``None`` when stateless)."""
        return None

    def state_restore(self, payload: Any, config: Any = None) -> Any:
        """Rebuild per-stream state from :meth:`state_snapshot` output."""
        return self.new_state(config)


#: name → Domain subclass, for explicitly registered domains.
_REGISTRY: dict = {}

#: Built-in domains resolve lazily: importing the module registers the
#: class, so `get_domain("av")` works without eagerly importing every
#: domain package (and its models) at registry-import time.
_BUILTIN = {
    "av": "repro.domains.av.domain",
    "ecg": "repro.domains.ecg.domain",
    "tvnews": "repro.domains.tvnews.domain",
    "video": "repro.domains.video.domain",
}


def register_domain(name: str):
    """Class decorator: register a :class:`Domain` subclass under ``name``."""

    def decorate(cls):
        if not (isinstance(cls, type) and issubclass(cls, Domain)):
            raise TypeError(f"@register_domain expects a Domain subclass, got {cls!r}")
        existing = _REGISTRY.get(name)
        if existing is not None and existing is not cls:
            raise ValueError(f"domain {name!r} is already registered to {existing!r}")
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return decorate


def get_domain(name: str, config: Any = None) -> Domain:
    """Instantiate the domain registered under ``name``.

    ``config`` is the domain's own config dataclass (``None`` = its
    defaults). Unknown names raise ``KeyError`` listing what exists.
    """
    if name not in _REGISTRY and name in _BUILTIN:
        importlib.import_module(_BUILTIN[name])
    cls = _REGISTRY.get(name)
    if cls is None:
        raise KeyError(
            f"unknown domain {name!r}; registered domains: {', '.join(domain_names())}"
        )
    return cls(config)


def domain_names() -> list:
    """Sorted names of every known domain (registered or built-in)."""
    return sorted(set(_REGISTRY) | set(_BUILTIN))
