"""Video-analytics monitoring pipeline: detections → tracks → assertions."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.database import AssertionDatabase
from repro.core.runtime import OMG, MonitoringReport
from repro.core.types import StreamItem
from repro.domains.registry import MonitorRun
from repro.domains.video.assertions import (
    MultiboxAssertion,
    make_appear_assertion,
    make_flicker_assertion,
    video_consistency_spec,
)
from repro.tracking.tracker import IoUTracker
from repro.utils.codec import register_result_type


@register_result_type
@dataclass(frozen=True)
class VideoPipelineConfig:
    """Parameters of the video monitoring pipeline."""

    fps: float = 15.0
    temporal_threshold: float = 0.4  # T for flicker/appear, in seconds
    tracker_iou: float = 0.2
    tracker_max_age: int = 3
    multibox_iou: float = 0.25


class VideoPipeline:
    """Builds the OMG runtime for the video domain and feeds it streams.

    The pipeline converts per-frame detection lists into stream items:
    boxes get identifiers from a greedy IoU tracker (§4.1: "we can assign
    a new identifier for each box that appears and assign the same
    identifier as it persists through the video"), and the three §5.1
    assertions — ``flicker``, ``appear``, ``multibox`` — are registered in
    a fresh assertion database.
    """

    def __init__(self, config: "VideoPipelineConfig | None" = None) -> None:
        self.config = config if config is not None else VideoPipelineConfig()
        self.spec = video_consistency_spec(self.config.temporal_threshold)
        database = AssertionDatabase()
        self.flicker = make_flicker_assertion(self.spec)
        self.appear = make_appear_assertion(self.spec)
        self.multibox = MultiboxAssertion(self.config.multibox_iou)
        database.add(self.multibox, domain="video")
        database.add(self.flicker, domain="video")
        database.add(self.appear, domain="video")
        self.omg = OMG(database)
        self._live_tracker: "IoUTracker | None" = None

    @property
    def assertion_names(self) -> list:
        return self.omg.database.names()

    # ------------------------------------------------------------------
    def to_stream(self, detections_per_frame: list) -> list:
        """Track detections and wrap them into stream items.

        ``detections_per_frame`` is a list (over frames) of lists of
        scored, labeled :class:`~repro.geometry.box2d.Box2D`.
        """
        tracker = IoUTracker(
            iou_threshold=self.config.tracker_iou, max_age=self.config.tracker_max_age
        )
        tracked_frames = tracker.run(detections_per_frame)
        items = []
        for frame_index, tracked in enumerate(tracked_frames):
            outputs = self._frame_outputs(tracked)
            items.append(
                StreamItem(
                    index=frame_index,
                    timestamp=frame_index / self.config.fps,
                    outputs=outputs,
                )
            )
        return items

    @staticmethod
    def _frame_outputs(tracked: list) -> tuple:
        return tuple(
            {
                "box": t.box,
                "label": t.box.label,
                "score": t.box.score,
                "track_id": t.track_id,
            }
            for t in tracked
        )

    def monitor(self, detections_per_frame: list) -> MonitorRun:
        """Full pass: track, build the stream, run all assertions.

        Returns a :class:`~repro.domains.registry.MonitorRun`
        (``.report`` + ``.items``; unpacks like the old 2-tuple).
        """
        items = self.to_stream(detections_per_frame)
        return MonitorRun(report=self.omg.monitor(items), items=items)

    # ------------------------------------------------------------------
    # Online / streaming path
    # ------------------------------------------------------------------
    def start_stream(self) -> None:
        """Begin a fresh online session: new tracker, cleared runtime."""
        self._live_tracker = IoUTracker(
            iou_threshold=self.config.tracker_iou, max_age=self.config.tracker_max_age
        )
        self.omg.reset()

    def _require_tracker(self) -> IoUTracker:
        if self._live_tracker is None:
            self.start_stream()
        return self._live_tracker

    def observe_batch(
        self, detections_per_frame: list, *, parallel: bool = False
    ) -> MonitoringReport:
        """Ingest a chunk of frames; returns the chunk's severity report."""
        tracker = self._require_tracker()
        start = self.omg.n_observed
        outputs = []
        for offset, detections in enumerate(detections_per_frame):
            tracked = tracker.update(start + offset, detections)
            outputs.append(self._frame_outputs(tracked))
        timestamps = [
            (start + offset) / self.config.fps
            for offset in range(len(detections_per_frame))
        ]
        return self.omg.observe_batch(
            None, outputs, timestamps=timestamps, parallel=parallel
        )

    def severity_matrix(self, detections_per_frame: list) -> np.ndarray:
        """``(n_frames, 3)`` severities in database order."""
        report, _ = self.monitor(detections_per_frame)
        return report.severities
