"""Video-analytics domain: vehicle detection on the ``night-street`` world."""

from repro.domains.video.assertions import (
    MultiboxAssertion,
    interpolate_box,
    make_appear_assertion,
    make_flicker_assertion,
    video_consistency_spec,
)
from repro.domains.video.pipeline import VideoPipeline, VideoPipelineConfig
from repro.domains.video.task import (
    VideoActiveLearningTask,
    VideoTaskData,
    bootstrap_detector,
    make_video_task_data,
    run_video_weak_supervision,
)

__all__ = [
    "MultiboxAssertion",
    "VideoActiveLearningTask",
    "VideoPipeline",
    "VideoPipelineConfig",
    "VideoTaskData",
    "bootstrap_detector",
    "interpolate_box",
    "make_appear_assertion",
    "make_flicker_assertion",
    "make_video_task_data",
    "run_video_weak_supervision",
]
