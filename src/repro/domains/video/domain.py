"""``video`` domain adapter: night-street detection through the registry.

Raw unit: one frame's detection list (scored, labeled
:class:`~repro.geometry.box2d.Box2D`). Per-stream state: a live greedy
IoU tracker plus the frame counter, so identifiers persist across raw
units exactly as :meth:`VideoPipeline.to_stream` assigns them offline.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field

from repro.core.runtime import OMG
from repro.core.seeding import derive_seed
from repro.domains.registry import Domain, RawItem, register_domain
from repro.domains.video.pipeline import VideoPipeline, VideoPipelineConfig
from repro.tracking.tracker import IoUTracker
from repro.worlds.traffic import TrafficWorld, TrafficWorldConfig


@dataclass(frozen=True)
class VideoDomainConfig:
    """Serving config: pipeline knobs plus the demo world/model sizes."""

    pipeline: VideoPipelineConfig = VideoPipelineConfig()
    world: TrafficWorldConfig = field(
        default_factory=lambda: TrafficWorldConfig(profile="night")
    )
    #: Bootstrap sizes for the demo detector built by :meth:`build_world`
    #: (kept small: the serving demo needs a model that makes the
    #: paper's systematic errors, not a well-trained one).
    n_bootstrap_day: int = 30
    n_bootstrap_night: int = 2


class _VideoWorld:
    """A traffic world plus the detector that watches it."""

    def __init__(self, world: TrafficWorld, detector) -> None:
        self.world = world
        self.detector = detector


@register_domain("video")
class VideoDomain(Domain):
    """Video analytics: ``multibox`` / ``flicker`` / ``appear``."""

    @classmethod
    def default_config(cls) -> VideoDomainConfig:
        return VideoDomainConfig()

    def build_pipeline(self, config: "VideoDomainConfig | None" = None) -> VideoPipeline:
        """The offline pipeline (the registry entry point experiments use)."""
        return VideoPipeline(self._config(config).pipeline)

    def build_monitor(self, config: "VideoDomainConfig | None" = None) -> OMG:
        return self.build_pipeline(config).omg

    def build_world(self, seed: int = 0) -> _VideoWorld:
        from repro.domains.video.task import bootstrap_detector, make_video_task_data

        cfg = self.config
        data = make_video_task_data(
            derive_seed(seed, "video", "bootstrap"),
            n_bootstrap_day=cfg.n_bootstrap_day,
            n_bootstrap_night=cfg.n_bootstrap_night,
            n_pool=1,
            n_test=1,
        )
        detector = bootstrap_detector(data, seed=derive_seed(seed, "video", "detector"))
        world = TrafficWorld(cfg.world, seed=derive_seed(seed, "video", "world"))
        return _VideoWorld(world, detector)

    def iter_stream(self, world: _VideoWorld):
        for frame in world.world.stream(sys.maxsize):
            yield world.detector.detect(frame.image)

    def new_state(self, config: "VideoDomainConfig | None" = None) -> dict:
        pipeline_cfg = self._config(config).pipeline
        return {
            "tracker": IoUTracker(
                iou_threshold=pipeline_cfg.tracker_iou,
                max_age=pipeline_cfg.tracker_max_age,
            ),
            "frame": 0,
            "fps": pipeline_cfg.fps,
        }

    def item_from_raw(self, raw, state=None) -> list:
        if state is None:
            # Tracking accumulates across frames; a fresh tracker per call
            # would silently produce wrong severities.
            raise ValueError(
                "the video domain is stateful: thread the object returned by "
                "new_state() through every item_from_raw call (MonitorService "
                "does this per session)"
            )
        frame = state["frame"]
        state["frame"] = frame + 1
        tracked = state["tracker"].update(frame, list(raw))
        outputs = VideoPipeline._frame_outputs(tracked)
        return [RawItem(list(outputs), frame / state["fps"])]

    def state_snapshot(self, state) -> dict:
        return {
            "tracker": state["tracker"].get_state(),
            "frame": state["frame"],
            "fps": state["fps"],
        }

    def state_restore(self, payload, config=None) -> dict:
        state = self.new_state(config)
        state["tracker"].set_state(payload["tracker"])
        state["frame"] = int(payload["frame"])
        state["fps"] = float(payload["fps"])
        return state
