"""``video`` domain adapter: night-street detection through the registry.

Raw unit: one frame's detection list (scored, labeled
:class:`~repro.geometry.box2d.Box2D`). Per-stream state: a live greedy
IoU tracker plus the frame counter, so identifiers persist across raw
units exactly as :meth:`VideoPipeline.to_stream` assigns them offline.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field

from repro.core.runtime import OMG
from repro.core.seeding import derive_seed
from repro.core.spec import (
    AssertionSuite,
    ConsistencySpecDecl,
    PerItemSpec,
    SuiteEntry,
    TemporalDecl,
)
from repro.domains.registry import Domain, RawItem, RetrainableModel, register_domain
from repro.domains.video.pipeline import VideoPipeline, VideoPipelineConfig
from repro.tracking.tracker import IoUTracker
from repro.utils.codec import register_result_type
from repro.worlds.traffic import TrafficWorld, TrafficWorldConfig


@register_result_type
@dataclass(frozen=True)
class VideoDomainConfig:
    """Serving config: pipeline knobs plus the demo world/model sizes."""

    pipeline: VideoPipelineConfig = VideoPipelineConfig()
    world: TrafficWorldConfig = field(
        default_factory=lambda: TrafficWorldConfig(profile="night")
    )
    #: Bootstrap sizes for the demo detector built by :meth:`build_world`
    #: (kept small: the serving demo needs a model that makes the
    #: paper's systematic errors, not a well-trained one).
    n_bootstrap_day: int = 30
    n_bootstrap_night: int = 2
    #: Held-out frames behind :meth:`RetrainableModel.evaluate`.
    n_eval: int = 60


class _VideoWorld:
    """A traffic world plus the detector that watches it."""

    def __init__(self, world: TrafficWorld, detector) -> None:
        self.world = world
        self.detector = detector


class VideoRetrainableModel(RetrainableModel):
    """The night-street detector behind a video improvement loop.

    Weak supervision reuses :func:`~repro.core.weak_supervision.
    harvest_weak_labels`: the given units form a sub-stream, the three
    video assertions propose corrections over it (flicker gaps filled,
    spurious appearances removed, majority-class fixes), and the
    corrected outputs become per-frame pseudo-truth boxes — the §5.5
    recipe, applied online to the frames the monitor flagged.
    """

    metric_name = "mAP%"

    def __init__(
        self, config: VideoDomainConfig, seed: int = 0, *, bootstrap: bool = True
    ) -> None:
        from repro.detection.detector import Detector
        from repro.domains.video.task import bootstrap_detector, make_video_task_data

        self.config = config
        self._seed = seed
        self._eval_frames: "list | None" = None
        if bootstrap:
            data = make_video_task_data(
                derive_seed(seed, "video-improve", "bootstrap"),
                n_bootstrap_day=config.n_bootstrap_day,
                n_bootstrap_night=config.n_bootstrap_night,
                n_pool=1,
                n_test=1,
            )
            self.model = bootstrap_detector(
                data, seed=derive_seed(seed, "video-improve", "detector")
            )
        else:
            self.model = Detector(
                seed=derive_seed(seed, "video-improve", "detector")
            )

    @property
    def eval_frames(self) -> list:
        """Held-out night frames (lazy: workers never evaluate)."""
        if self._eval_frames is None:
            # The same night mix make_video_task_data deploys on.
            night = TrafficWorldConfig(profile="night", class_probabilities=(0.70, 0.30))
            self._eval_frames = TrafficWorld(
                night, seed=derive_seed(self._seed, "video-improve", "eval")
            ).generate(self.config.n_eval)
        return self._eval_frames

    def predict_raw(self, sample) -> list:
        return self.model.detect(sample.image)

    def uncertainty(self, sample, raw) -> float:
        from repro.domains.video.task import frame_uncertainty

        return float(frame_uncertainty([raw])[0])

    def oracle_label(self, sample) -> list:
        return sample.ground_truth

    def weak_labels(self, samples: list, raws: "list | None" = None) -> list:
        from repro.core.weak_supervision import harvest_weak_labels
        from repro.geometry.box2d import Box2D

        if raws is None:
            raws = [self.predict_raw(sample) for sample in samples]
        if not samples:
            return []
        pipeline = VideoPipeline(self.config.pipeline)
        _report, items = pipeline.monitor(list(raws))
        weak = harvest_weak_labels(pipeline.omg, items)
        return [
            [
                Box2D(o["box"].x1, o["box"].y1, o["box"].x2, o["box"].y2,
                      label=o["label"])
                for o in item.outputs
            ]
            for item in weak.items
        ]

    def fine_tune(self, examples: list) -> None:
        images = [sample.image for sample, _label in examples]
        truths = [label for _sample, label in examples]
        self.model.fine_tune(images, truths)

    def evaluate(self) -> float:
        from repro.metrics.detection import evaluate_detections

        predictions = self.model.detect_frames([f.image for f in self.eval_frames])
        truths = [f.ground_truth for f in self.eval_frames]
        return evaluate_detections(predictions, truths).mean_ap_percent

    def get_state(self) -> dict:
        return self.model.get_state()

    def set_state(self, payload: dict) -> None:
        self.model.set_state(payload)


@register_domain("video")
class VideoDomain(Domain):
    """Video analytics: ``multibox`` / ``flicker`` / ``appear``."""

    @classmethod
    def default_config(cls) -> VideoDomainConfig:
        return VideoDomainConfig()

    def build_pipeline(self, config: "VideoDomainConfig | None" = None) -> VideoPipeline:
        """The offline pipeline (the registry entry point experiments use)."""
        return VideoPipeline(self._config(config).pipeline)

    def assertion_suite(self, config: "VideoDomainConfig | None" = None) -> AssertionSuite:
        """``multibox`` + the flicker/appear consistency pair, as specs."""
        p = self._config(config).pipeline
        return AssertionSuite(
            name="video-builtin",
            version=1,
            domain="video",
            entries=(
                SuiteEntry(
                    spec=PerItemSpec(
                        name="multibox",
                        predicate="video.multibox",
                        params={"iou_threshold": p.multibox_iou},
                        description="three vehicles should not highly overlap",
                        taxonomy_class="domain knowledge",
                    ),
                    tags=("builtin", "video"),
                ),
                SuiteEntry(
                    spec=ConsistencySpecDecl(
                        name="video",
                        id_fn="video.track_id",
                        attrs_fn="video.class_attr",
                        temporal_threshold=p.temporal_threshold,
                        temporal=(
                            TemporalDecl(mode="gap", name="flicker"),
                            TemporalDecl(mode="run", name="appear"),
                        ),
                        weak_label_fn="video.interpolate_box",
                    ),
                    tags=("builtin", "video", "consistency"),
                ),
            ),
        )

    def _legacy_monitor(self, config: "VideoDomainConfig | None" = None) -> OMG:
        return self.build_pipeline(config).omg

    def build_world(self, seed: int = 0) -> _VideoWorld:
        from repro.domains.video.task import bootstrap_detector, make_video_task_data

        cfg = self.config
        data = make_video_task_data(
            derive_seed(seed, "video", "bootstrap"),
            n_bootstrap_day=cfg.n_bootstrap_day,
            n_bootstrap_night=cfg.n_bootstrap_night,
            n_pool=1,
            n_test=1,
        )
        detector = bootstrap_detector(data, seed=derive_seed(seed, "video", "detector"))
        world = TrafficWorld(cfg.world, seed=derive_seed(seed, "video", "world"))
        return _VideoWorld(world, detector)

    def iter_stream(self, world: _VideoWorld):
        for frame in world.world.stream(sys.maxsize):
            yield world.detector.detect(frame.image)

    def build_sensor(self, seed: int = 0) -> TrafficWorld:
        return TrafficWorld(
            self.config.world, seed=derive_seed(seed, "video", "sensor")
        )

    def iter_samples(self, sensor: TrafficWorld):
        for frame in sensor.stream(sys.maxsize):
            yield frame

    def retrainable(
        self, seed: int = 0, *, bootstrap: bool = True
    ) -> VideoRetrainableModel:
        return VideoRetrainableModel(self.config, seed, bootstrap=bootstrap)

    def new_state(self, config: "VideoDomainConfig | None" = None) -> dict:
        pipeline_cfg = self._config(config).pipeline
        return {
            "tracker": IoUTracker(
                iou_threshold=pipeline_cfg.tracker_iou,
                max_age=pipeline_cfg.tracker_max_age,
            ),
            "frame": 0,
            "fps": pipeline_cfg.fps,
        }

    def item_from_raw(self, raw, state=None) -> list:
        if state is None:
            # Tracking accumulates across frames; a fresh tracker per call
            # would silently produce wrong severities.
            raise ValueError(
                "the video domain is stateful: thread the object returned by "
                "new_state() through every item_from_raw call (MonitorService "
                "does this per session)"
            )
        frame = state["frame"]
        state["frame"] = frame + 1
        tracked = state["tracker"].update(frame, list(raw))
        outputs = VideoPipeline._frame_outputs(tracked)
        return [RawItem(list(outputs), frame / state["fps"])]

    def state_snapshot(self, state) -> dict:
        return {
            "tracker": state["tracker"].get_state(),
            "frame": state["frame"],
            "fps": state["fps"],
        }

    def state_restore(self, payload, config=None) -> dict:
        state = self.new_state(config)
        state["tracker"].set_state(payload["tracker"])
        state["frame"] = int(payload["frame"])
        state["fps"] = float(payload["fps"])
        return state
