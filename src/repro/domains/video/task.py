"""Video-domain experiment plumbing: data splits, AL task, weak supervision.

Mirrors the paper's §5.1 setup for ``night-street``: "We used a separate
day of video for training and testing" — here, independent simulator
seeds. The detector is bootstrapped ("pretrained") on a small set of
frames dominated by a *different* street in daylight plus a couple of
night frames, standing in for MS-COCO pretraining: partial transfer with
systematic night errors left to fix.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.active_learning import ActiveLearningTask
from repro.core.weak_supervision import WeakSupervisionResult, harvest_weak_labels
from repro.detection.detector import Detector, DetectorConfig
from repro.domains.video.pipeline import VideoPipeline, VideoPipelineConfig
from repro.geometry.box2d import Box2D
from repro.metrics.detection import evaluate_detections
from repro.utils.rng import as_generator
from repro.worlds.traffic import TrafficWorld, TrafficWorldConfig


@dataclass
class VideoTaskData:
    """Pre-generated frames for one experiment instance."""

    bootstrap: list
    pool: list
    test: list


def make_video_task_data(
    seed: int,
    *,
    n_bootstrap_day: int = 45,
    n_bootstrap_night: int = 3,
    n_pool: int = 600,
    n_test: int = 200,
) -> VideoTaskData:
    """Generate the bootstrap/pool/test splits.

    Bootstrap frames come from a *different* street (other lane layout) so
    the pretrained detector transfers only partially — the role MS-COCO
    plays for SSD in the paper.
    """
    rng = as_generator(seed)
    seeds = rng.integers(0, 2**31 - 1, size=4)
    # The bootstrap street is car-dominated (like COCO's vehicle mix);
    # night-street traffic is truck/bus-heavy. Split-prone wide vehicles
    # are therefore rare at pretraining time, so duplicate rejection stays
    # unlearned until night labels arrive — the multibox error mode.
    boot_mix = (0.85, 0.15)
    night_mix = (0.70, 0.30)
    day_cfg = TrafficWorldConfig(
        profile="day", lanes=(30, 44, 60, 74), class_probabilities=boot_mix
    )
    other_night_cfg = TrafficWorldConfig(
        profile="night", lanes=(30, 44, 60, 74), class_probabilities=boot_mix
    )
    night_cfg = TrafficWorldConfig(profile="night", class_probabilities=night_mix)
    bootstrap = TrafficWorld(day_cfg, seed=int(seeds[0])).generate(n_bootstrap_day)
    bootstrap += TrafficWorld(other_night_cfg, seed=int(seeds[1])).generate(n_bootstrap_night)
    pool = TrafficWorld(night_cfg, seed=int(seeds[2])).generate(n_pool)
    test = TrafficWorld(night_cfg, seed=int(seeds[3])).generate(n_test)
    return VideoTaskData(bootstrap=bootstrap, pool=pool, test=test)


def bootstrap_detector(
    data: VideoTaskData,
    *,
    detector_config: "DetectorConfig | None" = None,
    seed: "int | np.random.Generator | None" = 0,
) -> Detector:
    """Train the "pretrained" detector on the bootstrap split."""
    detector = Detector(detector_config, seed=seed)
    detector.fit(
        [f.image for f in data.bootstrap], [f.ground_truth for f in data.bootstrap]
    )
    return detector


class VideoActiveLearningTask(ActiveLearningTask):
    """§5.4 night-street task: fine-tune the detector on labeled frames.

    Severities come from the three video assertions run over the pool as
    one continuous stream; uncertainty is per-frame least confidence
    (1 − mean detection score; frames with no detections get a moderate
    0.5 — the model is silent, not certain).
    """

    def __init__(
        self,
        data: VideoTaskData,
        *,
        detector_config: "DetectorConfig | None" = None,
        pipeline_config: "VideoPipelineConfig | None" = None,
        fine_tune_epochs: int = 10,
        seed: "int | np.random.Generator | None" = 0,
    ) -> None:
        self.data = data
        self.detector_config = detector_config
        self.pipeline = VideoPipeline(pipeline_config)
        self.fine_tune_epochs = fine_tune_epochs
        self._seed = as_generator(seed)
        self._pool_images = [f.image for f in data.pool]
        self._pool_truths = [f.ground_truth for f in data.pool]
        self._test_images = [f.image for f in data.test]
        self._test_truths = [f.ground_truth for f in data.test]

    def pool_size(self) -> int:
        return len(self.data.pool)

    def initial_model(self) -> Detector:
        return bootstrap_detector(
            self.data, detector_config=self.detector_config, seed=self._seed.spawn(1)[0]
        )

    def train(self, model: Detector, labeled_indices: np.ndarray) -> Detector:
        images = [self._pool_images[i] for i in labeled_indices]
        truths = [self._pool_truths[i] for i in labeled_indices]
        model.fine_tune(images, truths, epochs=self.fine_tune_epochs)
        return model

    def predict_pool(self, model: Detector) -> list:
        return model.detect_frames(self._pool_images)

    def severities(self, predictions: list) -> np.ndarray:
        return self.pipeline.severity_matrix(predictions)

    def uncertainty(self, predictions: list) -> np.ndarray:
        return frame_uncertainty(predictions)

    def evaluate(self, model: Detector) -> float:
        preds = model.detect_frames(self._test_images)
        return evaluate_detections(preds, self._test_truths).mean_ap_percent


def frame_uncertainty(detections_per_frame: list) -> np.ndarray:
    """Least-confidence score per frame (higher = less confident).

    The standard "least confident" aggregation for detection: a frame is
    as uncertain as its weakest detection (Settles, 2009). Frames with no
    detections get a moderate 0.5 — the model is silent there, not
    certain.
    """
    scores = np.full(len(detections_per_frame), 0.5, dtype=np.float64)
    for i, dets in enumerate(detections_per_frame):
        if dets:
            scores[i] = 1.0 - min(d.score for d in dets)
    return scores


def run_video_weak_supervision(
    data: VideoTaskData,
    *,
    detector: "Detector | None" = None,
    pipeline_config: "VideoPipelineConfig | None" = None,
    n_flagged: int = 750,
    n_random: int = 250,
    fine_tune_epochs: int = 30,
    seed: "int | np.random.Generator | None" = 0,
) -> WeakSupervisionResult:
    """§5.5 for night-street: retrain on assertion-corrected outputs.

    The paper uses 1,000 additional frames — 750 that triggered
    ``flicker`` and 250 random — and trains on the weak labels produced
    by the consistency corrections (interpolated boxes for flicker gaps,
    removals for spurious appearances, majority-class fixes).
    """
    rng = as_generator(seed)
    pretrained = detector if detector is not None else bootstrap_detector(data, seed=rng.spawn(1)[0])
    pipeline = VideoPipeline(pipeline_config)

    pool_images = [f.image for f in data.pool]
    predictions = pretrained.detect_frames(pool_images)
    report, items = pipeline.monitor(predictions)
    weak = harvest_weak_labels(pipeline.omg, items)

    flagged = report.flagged_indices("flicker").tolist()
    rng.shuffle(flagged)
    chosen = flagged[:n_flagged]
    others = np.setdiff1d(np.arange(len(items)), np.asarray(chosen, dtype=np.intp))
    if others.size:
        chosen += rng.choice(others, size=min(n_random, others.size), replace=False).tolist()

    weak_truths = []
    for idx in chosen:
        boxes = [
            Box2D(o["box"].x1, o["box"].y1, o["box"].x2, o["box"].y2, label=o["label"])
            for o in weak.items[idx].outputs
        ]
        weak_truths.append(boxes)

    tuned = pretrained.clone()
    tuned.fine_tune(
        [pool_images[i] for i in chosen], weak_truths, epochs=fine_tune_epochs
    )

    test_images = [f.image for f in data.test]
    test_truths = [f.ground_truth for f in data.test]
    before = evaluate_detections(pretrained.detect_frames(test_images), test_truths)
    after = evaluate_detections(tuned.detect_frames(test_images), test_truths)
    return WeakSupervisionResult(
        domain="video analytics",
        pretrained_metric=before.mean_ap_percent,
        weakly_supervised_metric=after.mean_ap_percent,
        n_weak_labels=len(chosen),
        metric_name="mAP",
    )
