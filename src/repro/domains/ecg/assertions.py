"""The ECG assertion: rhythm predictions must be stable over 30 seconds.

"The European Society of Cardiology guidelines for detecting AF require
at least 30 seconds of signal before calling a detection. Thus,
predictions should not rapidly switch between two states" (§2.2). Via
the consistency API: "We used the detected class as our identifier and
set T to 30 seconds" (§4.1) — a predicted class appearing for less than
30 s (A→B→A) is a run violation; a class vanishing and returning within
30 s is a gap violation. Both are oscillations of the same event.

Stream items are the windows of one record; each window's single output
is ``{"class": k, "probs": …}``.
"""

from __future__ import annotations

from repro.core.consistency import ConsistencySpec, TemporalConsistencyAssertion
from repro.core.spec import register_predicate


@register_predicate("ecg.class_id")
def predicted_class_identifier(output) -> int:
    """``Id``: the window's predicted rhythm class (§4.1)."""
    return output["class"]


def ecg_consistency_spec(temporal_threshold: float = 30.0) -> ConsistencySpec:
    """Consistency spec: identifier = predicted class, ``T`` = 30 s."""
    return ConsistencySpec(
        id_fn=lambda o: o["class"],
        attrs_fn=None,
        temporal_threshold=temporal_threshold,
        name="ecg",
    )


def make_ecg_assertion(temporal_threshold: float = 30.0) -> TemporalConsistencyAssertion:
    """The deployed ECG assertion (named ``ECG`` as in Tables 2/3)."""
    return TemporalConsistencyAssertion(
        ecg_consistency_spec(temporal_threshold), mode="both", name="ECG"
    )
