"""ECG domain: atrial-fibrillation classification on the ECG world."""

from repro.domains.ecg.assertions import ecg_consistency_spec, make_ecg_assertion
from repro.domains.ecg.model import ECGClassifier
from repro.domains.ecg.task import (
    ECGActiveLearningTask,
    ECGTaskData,
    bootstrap_ecg_classifier,
    make_ecg_task_data,
    record_severities,
    run_ecg_weak_supervision,
)

__all__ = [
    "ECGActiveLearningTask",
    "ECGClassifier",
    "ECGTaskData",
    "bootstrap_ecg_classifier",
    "ecg_consistency_spec",
    "make_ecg_assertion",
    "make_ecg_task_data",
    "record_severities",
    "run_ecg_weak_supervision",
]
