"""The ECG window classifier (stand-in for Rajpurkar et al., 2019)."""

from __future__ import annotations

import numpy as np

from repro.ml.mlp import MLPClassifier
from repro.ml.preprocess import Standardizer
from repro.utils.rng import as_generator
from repro.worlds.ecg import ECG_CLASSES, N_ECG_FEATURES


class ECGClassifier:
    """MLP over per-window features with record-level aggregation.

    The paper's network emits a rhythm class per short window; record
    accuracy is computed from the window predictions (we use majority
    vote). :meth:`fit` trains from scratch; :meth:`fine_tune` continues
    from current weights, as the paper's active-learning/weak-supervision
    rounds do.
    """

    def __init__(
        self,
        *,
        hidden: tuple = (16,),
        learning_rate: float = 5e-3,
        l2: float = 1e-4,
        epochs: int = 80,
        fine_tune_epochs: int = 20,
        seed: "int | np.random.Generator | None" = None,
    ) -> None:
        self._rng = as_generator(seed)
        self.epochs = epochs
        self.fine_tune_epochs = fine_tune_epochs
        self.standardizer = Standardizer()
        self.mlp = MLPClassifier(
            n_features=N_ECG_FEATURES,
            hidden=hidden,
            n_classes=len(ECG_CLASSES),
            learning_rate=learning_rate,
            l2=l2,
            seed=self._rng.spawn(1)[0],
        )
        self.is_fitted = False

    def get_state(self) -> dict:
        """JSON-encodable snapshot for the model registry / retrain workers.

        Carries weights, optimizer moments, normalization, and both
        generator positions, so ``set_state`` + :meth:`fine_tune` is
        bit-identical to fine-tuning the original object.
        """
        from repro.utils.rng import generator_state

        return {
            "kind": "ecg_classifier",
            "mlp": self.mlp.get_state(),
            "standardizer": self.standardizer.get_state(),
            "rng": generator_state(self._rng),
            "epochs": self.epochs,
            "fine_tune_epochs": self.fine_tune_epochs,
            "is_fitted": self.is_fitted,
        }

    def set_state(self, payload: dict) -> None:
        """Restore :meth:`get_state` output into a same-shaped classifier."""
        from repro.utils.rng import generator_from_state

        if payload.get("kind") != "ecg_classifier":
            raise ValueError(
                f"not an ECGClassifier state payload (kind={payload.get('kind')!r})"
            )
        self.mlp.set_state(payload["mlp"])
        self.standardizer.set_state(payload["standardizer"])
        self._rng = generator_from_state(payload["rng"])
        self.epochs = int(payload["epochs"])
        self.fine_tune_epochs = int(payload["fine_tune_epochs"])
        self.is_fitted = bool(payload["is_fitted"])

    def clone(self) -> "ECGClassifier":
        """Deep copy of the classifier."""
        other = ECGClassifier(seed=self._rng.spawn(1)[0])
        other.epochs = self.epochs
        other.fine_tune_epochs = self.fine_tune_epochs
        other.mlp = self.mlp.clone()
        other.standardizer.mean_ = (
            None if self.standardizer.mean_ is None else self.standardizer.mean_.copy()
        )
        other.standardizer.scale_ = (
            None if self.standardizer.scale_ is None else self.standardizer.scale_.copy()
        )
        other.is_fitted = self.is_fitted
        return other

    # ------------------------------------------------------------------
    @staticmethod
    def _stack_windows(records: list, labels: "list | None" = None):
        features = np.concatenate([r.features for r in records])
        if labels is None:
            window_labels = np.concatenate(
                [np.full(r.n_windows, r.label, dtype=np.intp) for r in records]
            )
        else:
            window_labels = np.concatenate(
                [np.full(r.n_windows, int(l), dtype=np.intp) for r, l in zip(records, labels)]
            )
        return features, window_labels

    def fit(self, records: list, labels: "list | None" = None) -> "ECGClassifier":
        """Train from scratch on records (labels default to record truth)."""
        features, window_labels = self._stack_windows(records, labels)
        x = self.standardizer.fit(features).transform(features)
        self.mlp.fit(x, window_labels, epochs=self.epochs, reset=True)
        self.is_fitted = True
        return self

    def fine_tune(
        self,
        records: list,
        labels: "list | None" = None,
        *,
        window_targets: "np.ndarray | None" = None,
        epochs: "int | None" = None,
    ) -> "ECGClassifier":
        """Continue training on records or explicit per-window targets.

        ``window_targets`` (when given) must align with the concatenated
        windows of ``records`` and may be soft ``(n, k)`` — the form weak
        supervision produces.
        """
        if not self.is_fitted:
            raise RuntimeError("fine_tune requires a fitted classifier; call fit first")
        if window_targets is None:
            features, targets = self._stack_windows(records, labels)
        else:
            features = np.concatenate([r.features for r in records])
            targets = window_targets
        x = self.standardizer.transform(features)
        self.mlp.fit(
            x, targets, epochs=epochs if epochs is not None else self.fine_tune_epochs
        )
        return self

    # ------------------------------------------------------------------
    def predict_windows(self, record) -> tuple[np.ndarray, np.ndarray]:
        """(per-window class indices, per-window probability matrix)."""
        if not self.is_fitted:
            raise RuntimeError("classifier is not fitted; call fit first")
        probs = self.mlp.predict_proba(self.standardizer.transform(record.features))
        return np.argmax(probs, axis=1), probs

    def predict_record(self, record) -> int:
        """Record-level prediction: majority vote over windows."""
        classes, _ = self.predict_windows(record)
        return int(np.bincount(classes, minlength=len(ECG_CLASSES)).argmax())

    def record_confidence(self, record) -> float:
        """Mean max-probability over windows (for least-confident sampling)."""
        _, probs = self.predict_windows(record)
        return float(probs.max(axis=1).mean())

    def accuracy(self, records: list) -> float:
        """Record-level accuracy in percent."""
        if not records:
            return 0.0
        correct = sum(self.predict_record(r) == r.label for r in records)
        return 100.0 * correct / len(records)
