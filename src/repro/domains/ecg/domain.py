"""``ecg`` domain adapter: AF-classification monitoring via the registry.

Raw unit: one record's window predictions —
``{"record": ECGRecord, "classes": ndarray}``. A serving stream is the
concatenation of successive records' windows; per-stream state is the
running time offset, which pads ``temporal_threshold`` seconds between
records so the 30 s oscillation assertion never fires *across* a record
boundary (a gap must be strictly shorter than ``T`` to fire). A run that
reaches a record's edge can still be judged short once the next record
opens with a different class — the price of one continuous stream; the
per-record experiment path (:func:`repro.domains.ecg.task.record_severities`)
keeps its reset-per-record semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.database import AssertionDatabase
from repro.core.runtime import OMG
from repro.core.seeding import derive_seed
from repro.domains.ecg.assertions import make_ecg_assertion
from repro.domains.registry import Domain, RawItem, register_domain
from repro.worlds.ecg import ECGWorld, ECGWorldConfig


@dataclass(frozen=True)
class EcgDomainConfig:
    """Serving config: assertion threshold plus demo world/model sizes."""

    temporal_threshold: float = 30.0
    world: ECGWorldConfig = field(default_factory=ECGWorldConfig)
    #: Bootstrap size for the demo classifier built by :meth:`build_world`.
    n_train: int = 80


class _ECGWorld:
    """An ECG record generator plus the classifier that reads it."""

    def __init__(self, world: ECGWorld, model) -> None:
        self.world = world
        self.model = model


@register_domain("ecg")
class EcgDomain(Domain):
    """ECG: the single 30 s oscillation-consistency assertion."""

    @classmethod
    def default_config(cls) -> EcgDomainConfig:
        return EcgDomainConfig()

    def build_monitor(self, config: "EcgDomainConfig | None" = None) -> OMG:
        cfg = self._config(config)
        database = AssertionDatabase()
        database.add(make_ecg_assertion(cfg.temporal_threshold), domain="ecg")
        return OMG(database)

    def build_world(self, seed: int = 0) -> _ECGWorld:
        from repro.domains.ecg.task import bootstrap_ecg_classifier, make_ecg_task_data

        cfg = self.config
        data = make_ecg_task_data(
            derive_seed(seed, "ecg", "bootstrap"),
            n_train=cfg.n_train,
            n_pool=1,
            n_test=1,
            world_config=cfg.world,
        )
        model = bootstrap_ecg_classifier(data, seed=derive_seed(seed, "ecg", "model"))
        world = ECGWorld(cfg.world, seed=derive_seed(seed, "ecg", "world"))
        return _ECGWorld(world, model)

    def iter_stream(self, world: _ECGWorld):
        while True:
            record = world.world.generate_record()
            classes, _probs = world.model.predict_windows(record)
            yield {"record": record, "classes": classes}

    def new_state(self, config: "EcgDomainConfig | None" = None) -> dict:
        return {"offset": 0.0}

    def item_from_raw(self, raw, state=None) -> list:
        if state is None:
            # The running offset keeps record timestamps monotonic; without
            # it the oscillation assertion fires spuriously across records.
            raise ValueError(
                "the ecg domain is stateful: thread the object returned by "
                "new_state() through every item_from_raw call (MonitorService "
                "does this per session)"
            )
        record, classes = raw["record"], raw["classes"]
        offset = state["offset"]
        items = [
            RawItem([{"class": int(c)}], offset + float(t))
            for c, t in zip(classes, record.window_times)
        ]
        if items:
            # Next record starts a full threshold after this one ends, so
            # inter-record gaps can never register as oscillations.
            state["offset"] = items[-1].timestamp + self.config.temporal_threshold
        return items

    def state_snapshot(self, state) -> dict:
        return {"offset": state["offset"]}

    def state_restore(self, payload, config=None) -> dict:
        return {"offset": float(payload["offset"])}
