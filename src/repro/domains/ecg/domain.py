"""``ecg`` domain adapter: AF-classification monitoring via the registry.

Raw unit: one record's window predictions —
``{"record": ECGRecord, "classes": ndarray}``. A serving stream is the
concatenation of successive records' windows; per-stream state is the
running time offset, which pads ``temporal_threshold`` seconds between
records so the 30 s oscillation assertion never fires *across* a record
boundary (a gap must be strictly shorter than ``T`` to fire). A run that
reaches a record's edge can still be judged short once the next record
opens with a different class — the price of one continuous stream; the
per-record experiment path (:func:`repro.domains.ecg.task.record_severities`)
keeps its reset-per-record semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.database import AssertionDatabase
from repro.core.runtime import OMG
from repro.core.seeding import derive_seed
from repro.core.spec import (
    AssertionSuite,
    ConsistencySpecDecl,
    SuiteEntry,
    TemporalDecl,
)
from repro.domains.ecg.assertions import make_ecg_assertion
from repro.domains.registry import Domain, RawItem, RetrainableModel, register_domain
from repro.utils.codec import register_result_type
from repro.worlds.ecg import ECG_CLASSES, ECGWorld, ECGWorldConfig


@register_result_type
@dataclass(frozen=True)
class EcgDomainConfig:
    """Serving config: assertion threshold plus demo world/model sizes."""

    temporal_threshold: float = 30.0
    world: ECGWorldConfig = field(default_factory=ECGWorldConfig)
    #: Bootstrap size for the demo classifier built by :meth:`build_world`.
    n_train: int = 80
    #: Held-out records behind :meth:`RetrainableModel.evaluate`.
    n_eval: int = 160


class _ECGWorld:
    """An ECG record generator plus the classifier that reads it."""

    def __init__(self, world: ECGWorld, model) -> None:
        self.world = world
        self.model = model


class EcgRetrainableModel(RetrainableModel):
    """The AF window classifier behind an ECG improvement loop.

    Weak supervision uses the paper's consistency default for the
    oscillation assertion: minority oscillating windows are repaired to
    the record's majority *predicted* class, i.e. the record-level
    pseudo-label is that majority class (§4.2 / Table 4).
    """

    metric_name = "accuracy%"

    def __init__(
        self, config: EcgDomainConfig, seed: int = 0, *, bootstrap: bool = True
    ) -> None:
        from repro.domains.ecg.model import ECGClassifier

        self.config = config
        self._seed = seed
        self._eval_records: "list | None" = None
        self.model = ECGClassifier(seed=derive_seed(seed, "ecg-improve", "model"))
        if bootstrap:
            train = ECGWorld(
                config.world, seed=derive_seed(seed, "ecg-improve", "train")
            ).generate_records(config.n_train)
            self.model.fit(train)

    @property
    def eval_records(self) -> list:
        """Held-out records (generated lazily: workers never evaluate)."""
        if self._eval_records is None:
            self._eval_records = ECGWorld(
                self.config.world, seed=derive_seed(self._seed, "ecg-improve", "eval")
            ).generate_records(self.config.n_eval)
        return self._eval_records

    def predict_raw(self, sample) -> dict:
        classes, probs = self.model.predict_windows(sample)
        return {"record": sample, "classes": classes, "probs": probs}

    def uncertainty(self, sample, raw) -> float:
        return 1.0 - float(raw["probs"].max(axis=1).mean())

    def oracle_label(self, sample) -> int:
        return int(sample.label)

    def weak_labels(self, samples: list, raws: "list | None" = None) -> list:
        if raws is None:
            raws = [self.predict_raw(sample) for sample in samples]
        return [
            int(np.bincount(raw["classes"], minlength=len(ECG_CLASSES)).argmax())
            for raw in raws
        ]

    def fine_tune(self, examples: list) -> None:
        records = [sample for sample, _label in examples]
        labels = [label for _sample, label in examples]
        self.model.fine_tune(records, labels)

    def evaluate(self) -> float:
        return self.model.accuracy(self.eval_records)

    def get_state(self) -> dict:
        return self.model.get_state()

    def set_state(self, payload: dict) -> None:
        self.model.set_state(payload)


@register_domain("ecg")
class EcgDomain(Domain):
    """ECG: the single 30 s oscillation-consistency assertion."""

    @classmethod
    def default_config(cls) -> EcgDomainConfig:
        return EcgDomainConfig()

    def assertion_suite(self, config: "EcgDomainConfig | None" = None) -> AssertionSuite:
        """The single 30 s oscillation assertion (named ``ECG``), as a spec."""
        cfg = self._config(config)
        return AssertionSuite(
            name="ecg-builtin",
            version=1,
            domain="ecg",
            entries=(
                SuiteEntry(
                    spec=ConsistencySpecDecl(
                        name="ecg",
                        id_fn="ecg.class_id",
                        temporal_threshold=cfg.temporal_threshold,
                        temporal=(TemporalDecl(mode="both", name="ECG"),),
                    ),
                    tags=("builtin", "ecg", "consistency"),
                ),
            ),
        )

    def _legacy_monitor(self, config: "EcgDomainConfig | None" = None) -> OMG:
        cfg = self._config(config)
        database = AssertionDatabase()
        database.add(make_ecg_assertion(cfg.temporal_threshold), domain="ecg")
        return OMG(database)

    def build_world(self, seed: int = 0) -> _ECGWorld:
        from repro.domains.ecg.task import bootstrap_ecg_classifier, make_ecg_task_data

        cfg = self.config
        data = make_ecg_task_data(
            derive_seed(seed, "ecg", "bootstrap"),
            n_train=cfg.n_train,
            n_pool=1,
            n_test=1,
            world_config=cfg.world,
        )
        model = bootstrap_ecg_classifier(data, seed=derive_seed(seed, "ecg", "model"))
        world = ECGWorld(cfg.world, seed=derive_seed(seed, "ecg", "world"))
        return _ECGWorld(world, model)

    def iter_stream(self, world: _ECGWorld):
        while True:
            record = world.world.generate_record()
            classes, _probs = world.model.predict_windows(record)
            yield {"record": record, "classes": classes}

    def build_sensor(self, seed: int = 0) -> ECGWorld:
        return ECGWorld(self.config.world, seed=derive_seed(seed, "ecg", "sensor"))

    def iter_samples(self, sensor: ECGWorld):
        while True:
            yield sensor.generate_record()

    def retrainable(
        self, seed: int = 0, *, bootstrap: bool = True
    ) -> EcgRetrainableModel:
        return EcgRetrainableModel(self.config, seed, bootstrap=bootstrap)

    def new_state(self, config: "EcgDomainConfig | None" = None) -> dict:
        return {"offset": 0.0}

    def item_from_raw(self, raw, state=None) -> list:
        if state is None:
            # The running offset keeps record timestamps monotonic; without
            # it the oscillation assertion fires spuriously across records.
            raise ValueError(
                "the ecg domain is stateful: thread the object returned by "
                "new_state() through every item_from_raw call (MonitorService "
                "does this per session)"
            )
        record, classes = raw["record"], raw["classes"]
        offset = state["offset"]
        items = [
            RawItem([{"class": int(c)}], offset + float(t))
            for c, t in zip(classes, record.window_times)
        ]
        if items:
            # Next record starts a full threshold after this one ends, so
            # inter-record gaps can never register as oscillations.
            state["offset"] = items[-1].timestamp + self.config.temporal_threshold
        return items

    def state_snapshot(self, state) -> dict:
        return {"offset": state["offset"]}

    def state_restore(self, payload, config=None) -> dict:
        return {"offset": float(payload["offset"])}
