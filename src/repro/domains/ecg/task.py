"""ECG-domain experiment plumbing: data splits, AL task, weak supervision.

Mirrors §5.1: "CINC17 contains 8,528 data points that we split into
train, validation, unlabeled, and test splits", with five rounds of 100
records per round (Appendix C) and a single deployed assertion.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.active_learning import ActiveLearningTask
from repro.core.runtime import OMG
from repro.core.types import StreamItem
from repro.core.weak_supervision import WeakSupervisionResult
from repro.domains.ecg.model import ECGClassifier
from repro.ml.losses import one_hot
from repro.utils.rng import as_generator
from repro.worlds.ecg import ECG_CLASSES, ECGWorld, ECGWorldConfig


@dataclass
class ECGTaskData:
    """Pre-generated record splits for one experiment instance."""

    train: list  # bootstrap training records (labeled)
    pool: list  # unlabeled pool
    test: list


def make_ecg_task_data(
    seed: int,
    *,
    n_train: int = 120,
    n_pool: int = 2000,
    n_test: int = 500,
    world_config: "ECGWorldConfig | None" = None,
) -> ECGTaskData:
    """Generate the train/pool/test record splits."""
    cfg = world_config if world_config is not None else ECGWorldConfig()
    world = ECGWorld(cfg, seed=seed)
    records = world.generate_records(n_train + n_pool + n_test)
    return ECGTaskData(
        train=records[:n_train],
        pool=records[n_train : n_train + n_pool],
        test=records[n_train + n_pool :],
    )


def bootstrap_ecg_classifier(
    data: ECGTaskData, *, seed: "int | np.random.Generator | None" = 0, **kwargs
) -> ECGClassifier:
    """Train the "pretrained" classifier on the bootstrap training split."""
    model = ECGClassifier(seed=seed, **kwargs)
    model.fit(data.train)
    return model


def record_stream(record, predicted_classes: np.ndarray) -> list:
    """Stream items for one record's window predictions."""
    return [
        StreamItem(
            index=i,
            timestamp=float(record.window_times[i]),
            outputs=({"class": int(predicted_classes[i])},),
        )
        for i in range(record.n_windows)
    ]


def _build_ecg_monitor(temporal_threshold: float = 30.0) -> OMG:
    """The registry entry point: a fresh one-assertion ECG runtime."""
    from repro.domains.ecg.domain import EcgDomainConfig
    from repro.domains.registry import get_domain

    return get_domain("ecg").build_monitor(
        EcgDomainConfig(temporal_threshold=temporal_threshold)
    )


def _record_severity(omg: OMG, record, predicted_classes: np.ndarray) -> float:
    """Total oscillation severity of one record via the streaming engine.

    Each record is its own stream: the runtime is reset, the record's
    windows are ingested as one batch, and the online severities are
    summed — numerically identical to an offline ``evaluate_stream``
    pass (the streaming-equivalence invariant), but on the same code
    path a deployed monitor would use.
    """
    omg.reset()
    items = record_stream(record, predicted_classes)
    report = omg.observe_batch(
        None,
        [list(item.outputs) for item in items],
        timestamps=[item.timestamp for item in items],
    )
    return float(report.severities.sum())


def record_severities(
    model: ECGClassifier, records: list, *, temporal_threshold: float = 30.0
) -> np.ndarray:
    """``(n_records, 1)`` oscillation severities under the ECG assertion."""
    severities = np.zeros((len(records), 1), dtype=np.float64)
    monitor = _build_ecg_monitor(temporal_threshold)
    for i, record in enumerate(records):
        classes, _ = model.predict_windows(record)
        severities[i, 0] = _record_severity(monitor, record, classes)
    return severities


class ECGActiveLearningTask(ActiveLearningTask):
    """§5.4 ECG task: single assertion, 100 records per round."""

    def __init__(
        self,
        data: ECGTaskData,
        *,
        temporal_threshold: float = 30.0,
        fine_tune_epochs: int = 20,
        seed: "int | np.random.Generator | None" = 0,
    ) -> None:
        self.data = data
        self.temporal_threshold = temporal_threshold
        self.fine_tune_epochs = fine_tune_epochs
        self._seed = as_generator(seed)

    def pool_size(self) -> int:
        return len(self.data.pool)

    def initial_model(self) -> ECGClassifier:
        return bootstrap_ecg_classifier(self.data, seed=self._seed.spawn(1)[0])

    def train(self, model: ECGClassifier, labeled_indices: np.ndarray) -> ECGClassifier:
        records = [self.data.pool[i] for i in labeled_indices]
        model.fine_tune(records, epochs=self.fine_tune_epochs)
        return model

    def predict_pool(self, model: ECGClassifier):
        # Predictions and the model are both needed downstream; return both.
        return model, [model.predict_windows(r) for r in self.data.pool]

    def severities(self, predictions) -> np.ndarray:
        _, window_preds = predictions
        monitor = _build_ecg_monitor(self.temporal_threshold)
        severities = np.zeros((len(self.data.pool), 1), dtype=np.float64)
        for i, (record, (classes, _probs)) in enumerate(zip(self.data.pool, window_preds)):
            severities[i, 0] = _record_severity(monitor, record, classes)
        return severities

    def uncertainty(self, predictions) -> np.ndarray:
        _, window_preds = predictions
        return np.array(
            [1.0 - float(probs.max(axis=1).mean()) for _classes, probs in window_preds]
        )

    def evaluate(self, model: ECGClassifier) -> float:
        return model.accuracy(self.data.test)


def run_ecg_weak_supervision(
    data: ECGTaskData,
    *,
    model: "ECGClassifier | None" = None,
    n_weak: int = 1000,
    temporal_threshold: float = 30.0,
    fine_tune_epochs: int = 15,
    seed: "int | np.random.Generator | None" = 0,
) -> WeakSupervisionResult:
    """§5.5 for ECG: 1,000 weak labels from the oscillation correction.

    For each flagged record the correction rule is the consistency
    default — replace minority oscillating windows with the record's
    majority *predicted* class — requiring no human labels.
    """
    rng = as_generator(seed)
    pretrained = model if model is not None else bootstrap_ecg_classifier(data, seed=rng.spawn(1)[0])

    severities = record_severities(
        pretrained, data.pool, temporal_threshold=temporal_threshold
    )[:, 0]
    flagged = np.flatnonzero(severities > 0)
    rng.shuffle(flagged)
    # Only records the assertion actually flagged get weak labels — weak
    # supervision repairs inconsistent outputs; plain self-training on
    # unflagged records would just reinforce the model's current beliefs.
    chosen = flagged[:n_weak].tolist()

    weak_records = [data.pool[i] for i in chosen]
    n_classes = len(ECG_CLASSES)
    targets = []
    for record in weak_records:
        classes, _ = pretrained.predict_windows(record)
        majority = int(np.bincount(classes, minlength=n_classes).argmax())
        targets.append(one_hot(np.full(record.n_windows, majority, dtype=np.intp), n_classes))
    window_targets = np.concatenate(targets)

    tuned = pretrained.clone()
    tuned.fine_tune(weak_records, window_targets=window_targets, epochs=fine_tune_epochs)

    return WeakSupervisionResult(
        domain="ECG",
        pretrained_metric=pretrained.accuracy(data.test),
        weakly_supervised_metric=tuned.accuracy(data.test),
        n_weak_labels=len(chosen),
        metric_name="accuracy",
    )
