"""``av`` domain adapter: LIDAR + camera fusion through the registry.

Raw unit: one 2 Hz sample with both sensors' detections —
``{"sample", "camera", "lidar"}`` — fused into a single stream item by
the same :meth:`AVPipeline.fuse_outputs` the offline monitor uses. Both
AV assertions are per-item, so the domain is stateless per stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.runtime import OMG
from repro.core.seeding import derive_seed
from repro.core.spec import AssertionSuite, PerItemSpec, SuiteEntry
from repro.domains.av.pipeline import AVPipeline, AVPipelineConfig
from repro.domains.registry import Domain, RawItem, register_domain
from repro.geometry.camera import PinholeCamera
from repro.worlds.av import AVWorld, AVWorldConfig


@dataclass(frozen=True)
class AVDomainConfig:
    """Serving config: camera/pipeline knobs plus demo model sizes."""

    pipeline: AVPipelineConfig = AVPipelineConfig()
    world: AVWorldConfig = field(default_factory=AVWorldConfig)
    #: Camera used to project LIDAR boxes; ``None`` = the world's camera.
    camera: "PinholeCamera | None" = None
    #: Bootstrap sizes for the demo detectors built by :meth:`build_world`.
    n_bootstrap_scenes: int = 10
    n_pretrain_scenes: int = 3


class _AVWorld:
    """An AV scene generator plus its two bootstrapped detectors."""

    def __init__(self, world: AVWorld, camera_model, lidar_model) -> None:
        self.world = world
        self.camera_model = camera_model
        self.lidar_model = lidar_model


@register_domain("av")
class AVDomain(Domain):
    """Autonomous vehicles: ``agree`` + ``multibox`` over fused sensors."""

    @classmethod
    def default_config(cls) -> AVDomainConfig:
        return AVDomainConfig()

    def _camera(self, cfg: AVDomainConfig) -> PinholeCamera:
        return cfg.camera if cfg.camera is not None else cfg.world.camera

    def build_pipeline(self, config: "AVDomainConfig | None" = None) -> AVPipeline:
        """The offline pipeline (the registry entry point experiments use)."""
        cfg = self._config(config)
        return AVPipeline(self._camera(cfg), cfg.pipeline)

    def assertion_suite(self, config: "AVDomainConfig | None" = None) -> AssertionSuite:
        """``agree`` + camera-only ``multibox`` (§5.1), as specs."""
        p = self._config(config).pipeline
        return AssertionSuite(
            name="av-builtin",
            version=1,
            domain="av",
            entries=(
                SuiteEntry(
                    spec=PerItemSpec(
                        name="agree",
                        predicate="av.agree",
                        params={
                            "iou_threshold": p.agree_iou,
                            "min_projection_area": p.min_projection_area,
                        },
                        description="point-cloud and image detections must agree",
                        taxonomy_class="consistency",
                    ),
                    tags=("builtin", "av"),
                ),
                SuiteEntry(
                    spec=PerItemSpec(
                        name="multibox",
                        predicate="video.multibox",
                        params={"iou_threshold": p.multibox_iou, "sensor": "camera"},
                        description="three vehicles should not highly overlap",
                        taxonomy_class="domain knowledge",
                    ),
                    tags=("builtin", "av"),
                ),
            ),
        )

    def _legacy_monitor(self, config: "AVDomainConfig | None" = None) -> OMG:
        return self.build_pipeline(config).omg

    def build_world(self, seed: int = 0) -> _AVWorld:
        from repro.domains.av.task import bootstrap_av_models, make_av_task_data

        cfg = self.config
        data = make_av_task_data(
            derive_seed(seed, "av", "bootstrap"),
            n_bootstrap_scenes=cfg.n_bootstrap_scenes,
            n_camera_pretrain_scenes=cfg.n_pretrain_scenes,
            n_pool_scenes=1,
            n_test_scenes=1,
            world_config=cfg.world,
        )
        camera_model, lidar_model = bootstrap_av_models(
            data, seed=derive_seed(seed, "av", "models")
        )
        world = AVWorld(cfg.world, seed=derive_seed(seed, "av", "world"))
        return _AVWorld(world, camera_model, lidar_model)

    def iter_stream(self, world: _AVWorld):
        scene_id = 0
        while True:
            scene = world.world.generate_scene(scene_id)
            scene_id += 1
            for sample in scene.samples:
                yield {
                    "sample": sample,
                    "camera": world.camera_model.detect(sample.camera_image),
                    "lidar": world.lidar_model.detect(sample.point_cloud),
                }

    def item_from_raw(self, raw, state=None) -> list:
        outputs = self._fuser.fuse_outputs(raw["camera"], raw["lidar"])
        return [RawItem(outputs, raw["sample"].timestamp)]

    @property
    def _fuser(self) -> AVPipeline:
        # fuse_outputs is pure given the camera, so one shared pipeline
        # serves every stream of this domain instance.
        fuser = getattr(self, "_fuser_cache", None)
        if fuser is None:
            fuser = self._fuser_cache = self.build_pipeline()
        return fuser
