"""The ``agree`` assertion: LIDAR and camera detections must be consistent.

"We implemented a model assertion that projects the 3D boxes onto the 2D
camera plane to check for consistency. If the assertion triggers, then at
least one of the sensors returned an incorrect answer" (§2.2). The §2.1
code example counts LIDAR boxes with no overlapping camera box; we also
count camera boxes with no overlapping LIDAR projection, since a camera
false positive is equally a disagreement.

Stream outputs in this domain are dicts with a ``sensor`` key:
``{"sensor": "camera", "box": Box2D, ...}`` or
``{"sensor": "lidar", "box3d": Box3D, "box": Box2D | None}`` where
``box`` on LIDAR outputs is the precomputed 2-D projection (``None`` when
the object projects outside the image).
"""

from __future__ import annotations

import numpy as np

from repro.core.assertion import ModelAssertion
from repro.core.spec import register_predicate
from repro.geometry.iou import iou_matrix


def sensor_agreement(lidar_boxes, camera_boxes, iou_threshold=0.1):
    """Count cross-sensor disagreements between two 2-D box sets.

    A LIDAR projection with no overlapping camera box is one failure;
    a camera box with no overlapping LIDAR projection is one failure.
    """
    failures = 0
    iou = iou_matrix(lidar_boxes, camera_boxes)
    for i in range(len(lidar_boxes)):
        if not np.any(iou[i] >= iou_threshold):
            failures += 1
    for j in range(len(camera_boxes)):
        if not np.any(iou[:, j] >= iou_threshold):
            failures += 1
    return float(failures)


class AgreeAssertion(ModelAssertion):
    """Per-sample LIDAR/camera agreement check (multi-modal consistency)."""

    taxonomy_class = "consistency"

    def __init__(
        self,
        iou_threshold: float = 0.1,
        min_projection_area: float = 20.0,
        name: str = "agree",
    ) -> None:
        super().__init__(name, "point-cloud and image detections must agree")
        self.iou_threshold = iou_threshold
        self.min_projection_area = min_projection_area

    def split_outputs(self, item) -> tuple[list, list]:
        """(lidar projections, camera boxes) participating in the check.

        LIDAR outputs without a usable projection (behind the camera or
        tiny at the image border) are excluded — their absence from the
        camera view is expected, not a disagreement.
        """
        lidar = [
            o["box"]
            for o in item.outputs
            if o.get("sensor") == "lidar"
            and o.get("box") is not None
            and o["box"].area >= self.min_projection_area
        ]
        camera = [o["box"] for o in item.outputs if o.get("sensor") == "camera"]
        return lidar, camera

    def evaluate_item(self, item) -> float:
        """Per-item severity (streaming hook: agreement is memoryless)."""
        lidar, camera = self.split_outputs(item)
        return sensor_agreement(lidar, camera, self.iou_threshold)

    def evaluate_stream(self, items: list) -> np.ndarray:
        severities = np.zeros(len(items), dtype=np.float64)
        for pos, item in enumerate(items):
            severities[pos] = self.evaluate_item(item)
        return severities

    def disagreeing_outputs(self, item) -> list:
        """Output indices (into ``item.outputs``) that disagree."""
        lidar, camera = self.split_outputs(item)
        iou = iou_matrix(lidar, camera)
        bad_lidar = {id(b) for i, b in enumerate(lidar) if not np.any(iou[i] >= self.iou_threshold)}
        bad_camera = {id(b) for j, b in enumerate(camera) if not np.any(iou[:, j] >= self.iou_threshold)}
        flagged = []
        for idx, output in enumerate(item.outputs):
            box = output.get("box")
            if box is None:
                continue
            if output.get("sensor") == "lidar" and id(box) in bad_lidar:
                flagged.append(idx)
            elif output.get("sensor") == "camera" and id(box) in bad_camera:
                flagged.append(idx)
        return flagged


@register_predicate("av.agree", factory=True)
def agree_assertion_factory(
    iou_threshold: float = 0.1, min_projection_area: float = 20.0
) -> AgreeAssertion:
    """Factory behind ``PerItemSpec(predicate="av.agree")``."""
    return AgreeAssertion(iou_threshold, min_projection_area)
