"""AV-domain experiment plumbing: data splits, AL task, weak supervision.

Mirrors §5.1/Appendix C: "we used 350 scenes to bootstrap the LIDAR
model, 175 scenes for unlabeled/training data for SSD, and 75 scenes for
validation". The LIDAR model is trained once on the bootstrap scenes and
then frozen; active learning and weak supervision improve the *camera*
model (the SSD analog).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.active_learning import ActiveLearningTask
from repro.core.types import Correction
from repro.core.weak_supervision import WeakSupervisionResult, harvest_weak_labels
from repro.detection.detector import Detector, DetectorConfig
from repro.domains.av.pipeline import AVPipeline, AVPipelineConfig
from repro.domains.video.task import frame_uncertainty
from repro.geometry.box2d import Box2D
from repro.lidar.detector import LidarDetector, LidarDetectorConfig
from repro.metrics.detection import evaluate_detections
from repro.utils.rng import as_generator
from repro.worlds.av import AVWorld, AVWorldConfig


@dataclass
class AVTaskData:
    """Pre-generated scenes for one experiment instance (flattened pools)."""

    bootstrap_samples: list  # LIDAR bootstrap (deployment distribution)
    camera_pretrain_samples: list  # camera pretraining (bright "day" world)
    pool_samples: list  # unlabeled pool for the camera model
    test_samples: list


def make_av_task_data(
    seed: int,
    *,
    n_bootstrap_scenes: int = 12,
    n_camera_pretrain_scenes: int = 3,
    n_pool_scenes: int = 24,
    n_test_scenes: int = 10,
    world_config: "AVWorldConfig | None" = None,
) -> AVTaskData:
    """Generate bootstrap/pool/test scene splits (scaled-down NuScenes).

    The LIDAR model bootstraps on deployment-distribution scenes (the
    paper's 350 NuScenes scenes); the *camera* model pretrains on a
    bright, high-contrast "day" rendering of a different set of scenes —
    the COCO-pretrained-SSD analog — so it transfers only partially to the
    dusk deployment scenes (Table 4: SSD starts at 10.6 mAP on NuScenes).
    """
    rng = as_generator(seed)
    seeds = rng.integers(0, 2**31 - 1, size=4)
    cfg = world_config if world_config is not None else AVWorldConfig()
    day_cfg = replace(
        cfg,
        sky_brightness=0.29,
        road_brightness=0.25,
        vehicle_contrast=0.55,
        contrast_falloff=0.004,
        camera_noise=0.015,
    )
    boot = AVWorld(cfg, seed=int(seeds[0])).generate_scenes(n_bootstrap_scenes)
    pretrain = AVWorld(day_cfg, seed=int(seeds[1])).generate_scenes(
        n_camera_pretrain_scenes, start_id=500
    )
    pool = AVWorld(cfg, seed=int(seeds[2])).generate_scenes(n_pool_scenes, start_id=1000)
    test = AVWorld(cfg, seed=int(seeds[3])).generate_scenes(n_test_scenes, start_id=2000)
    return AVTaskData(
        bootstrap_samples=[s for scene in boot for s in scene.samples],
        camera_pretrain_samples=[s for scene in pretrain for s in scene.samples],
        pool_samples=[s for scene in pool for s in scene.samples],
        test_samples=[s for scene in test for s in scene.samples],
    )


def default_av_detector_config() -> DetectorConfig:
    """Camera-detector config for the AV domain.

    AV camera boxes are small (distant traffic); the proposal size floors
    are looser than the street-camera defaults.
    """
    from repro.detection.proposals import ProposalConfig

    return DetectorConfig(
        classes=("car", "truck"),
        proposal=ProposalConfig(threshold=0.035, min_area=8, min_side=2.0),
    )


def bootstrap_av_models(
    data: AVTaskData,
    *,
    detector_config: "DetectorConfig | None" = None,
    lidar_config: "LidarDetectorConfig | None" = None,
    seed: "int | np.random.Generator | None" = 0,
) -> tuple[Detector, LidarDetector]:
    """Train the frozen LIDAR model and the pretrained camera model.

    The LIDAR model sees every bootstrap sample (the paper's 350 scenes);
    the camera model pretrains on the bright "day" scenes only, so it
    starts weak on the dusk deployment distribution — NuScenes SSD sits
    at 10.6 mAP in Table 4.
    """
    rng = as_generator(seed)
    lidar = LidarDetector(lidar_config, seed=rng.spawn(1)[0])
    lidar.fit(
        [s.point_cloud for s in data.bootstrap_samples],
        [list(s.ground_truth_3d) for s in data.bootstrap_samples],
    )
    if detector_config is None:
        detector_config = default_av_detector_config()
    camera = Detector(detector_config, seed=rng.spawn(1)[0])
    pretrain = data.camera_pretrain_samples
    camera.fit(
        [s.camera_image for s in pretrain], [list(s.ground_truth_2d) for s in pretrain]
    )
    return camera, lidar


class AVActiveLearningTask(ActiveLearningTask):
    """§5.4 NuScenes task: improve the camera model; LIDAR stays frozen."""

    def __init__(
        self,
        data: AVTaskData,
        *,
        detector_config: "DetectorConfig | None" = None,
        lidar_config: "LidarDetectorConfig | None" = None,
        pipeline_config: "AVPipelineConfig | None" = None,
        world_config: "AVWorldConfig | None" = None,
        fine_tune_epochs: int = 10,
        seed: "int | np.random.Generator | None" = 0,
    ) -> None:
        self.data = data
        self._seed = as_generator(seed)
        camera_cfg = (world_config or AVWorldConfig()).camera
        self.pipeline = AVPipeline(camera_cfg, pipeline_config)
        self.fine_tune_epochs = fine_tune_epochs
        self._camera0, self.lidar = bootstrap_av_models(
            data,
            detector_config=detector_config,
            lidar_config=lidar_config,
            seed=self._seed.spawn(1)[0],
        )
        # LIDAR detections over the pool are fixed (frozen model): compute once.
        self._pool_lidar = self.lidar.detect_samples(
            [s.point_cloud for s in data.pool_samples]
        )
        self._pool_images = [s.camera_image for s in data.pool_samples]
        self._pool_truths = [list(s.ground_truth_2d) for s in data.pool_samples]
        self._test_images = [s.camera_image for s in data.test_samples]
        self._test_truths = [list(s.ground_truth_2d) for s in data.test_samples]

    def pool_size(self) -> int:
        return len(self.data.pool_samples)

    def initial_model(self) -> Detector:
        return self._camera0.clone()

    def train(self, model: Detector, labeled_indices: np.ndarray) -> Detector:
        images = [self._pool_images[i] for i in labeled_indices]
        truths = [self._pool_truths[i] for i in labeled_indices]
        model.fine_tune(images, truths, epochs=self.fine_tune_epochs)
        return model

    def predict_pool(self, model: Detector) -> list:
        return [model.detect(img) for img in self._pool_images]

    def severities(self, predictions: list) -> np.ndarray:
        report, _ = self.pipeline.monitor(
            self.data.pool_samples, predictions, self._pool_lidar
        )
        return report.severities

    def uncertainty(self, predictions: list) -> np.ndarray:
        return frame_uncertainty(predictions)

    def evaluate(self, model: Detector) -> float:
        preds = [model.detect(img) for img in self._test_images]
        return evaluate_detections(preds, self._test_truths).mean_ap_percent


def impute_camera_boxes_rule(pipeline: AVPipeline):
    """Custom weak-supervision rule: impute 2-D boxes from 3-D detections.

    "We deployed a custom weak supervision rule that imputed boxes from
    the 3D predictions" (§5.1). For every confident LIDAR detection whose
    projection has no overlapping camera detection, propose adding a
    camera box at the projection, labeled by the projected size.
    """

    def rule(items: list) -> list:
        corrections = []
        for item in items:
            flagged = pipeline.agree.disagreeing_outputs(item)
            for idx in flagged:
                output = item.outputs[idx]
                if output.get("sensor") != "lidar":
                    continue
                box = output["box"]
                label = "truck" if output["box3d"].length > 6.0 else "car"
                corrections.append(
                    Correction(
                        kind="add",
                        item_index=item.index,
                        assertion_name="agree",
                        identifier=None,
                        proposed_output={
                            "sensor": "camera",
                            "box": box,
                            "label": label,
                            "score": output.get("score", 0.5),
                            "imputed": True,
                        },
                    )
                )
        return corrections

    return rule


def run_av_weak_supervision(
    data: AVTaskData,
    *,
    camera: "Detector | None" = None,
    lidar: "LidarDetector | None" = None,
    world_config: "AVWorldConfig | None" = None,
    pipeline_config: "AVPipelineConfig | None" = None,
    n_weak_samples: "int | None" = None,
    fine_tune_epochs: int = 20,
    seed: "int | np.random.Generator | None" = 0,
) -> WeakSupervisionResult:
    """§5.5 for the AV domain: retrain the camera model on imputed boxes."""
    rng = as_generator(seed)
    if camera is None or lidar is None:
        camera, lidar = bootstrap_av_models(data, seed=rng.spawn(1)[0])
    camera_cfg = (world_config or AVWorldConfig()).camera
    pipeline = AVPipeline(camera_cfg, pipeline_config)

    pool = data.pool_samples if n_weak_samples is None else data.pool_samples[:n_weak_samples]
    camera_dets, lidar_dets = pipeline.run_models(pool, camera, lidar)
    _, items = pipeline.monitor(pool, camera_dets, lidar_dets)
    weak = harvest_weak_labels(
        pipeline.omg, items, extra_rules=[impute_camera_boxes_rule(pipeline)]
    )

    weak_truths = []
    for item in weak.items:
        boxes = [
            Box2D(o["box"].x1, o["box"].y1, o["box"].x2, o["box"].y2, label=o["label"])
            for o in item.outputs
            if o.get("sensor") == "camera" and o.get("box") is not None
        ]
        weak_truths.append(boxes)

    tuned = camera.clone()
    tuned.fine_tune(
        [s.camera_image for s in pool], weak_truths, epochs=fine_tune_epochs
    )

    test_images = [s.camera_image for s in data.test_samples]
    test_truths = [list(s.ground_truth_2d) for s in data.test_samples]
    before = evaluate_detections([camera.detect(i) for i in test_images], test_truths)
    after = evaluate_detections([tuned.detect(i) for i in test_images], test_truths)
    return WeakSupervisionResult(
        domain="AVs",
        pretrained_metric=before.mean_ap_percent,
        weakly_supervised_metric=after.mean_ap_percent,
        n_weak_labels=len(pool),
        metric_name="mAP",
    )
