"""AV monitoring pipeline: joint LIDAR + camera streams → assertions."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.database import AssertionDatabase
from repro.core.runtime import OMG, MonitoringReport
from repro.core.types import StreamItem
from repro.domains.registry import MonitorRun
from repro.detection.detector import Detector
from repro.domains.av.assertions import AgreeAssertion
from repro.domains.video.assertions import MultiboxAssertion
from repro.geometry.camera import PinholeCamera, project_box3d_to_2d
from repro.lidar.detector import LidarDetector


@dataclass(frozen=True)
class AVPipelineConfig:
    """Parameters of the AV monitoring pipeline."""

    agree_iou: float = 0.1
    min_projection_area: float = 20.0
    multibox_iou: float = 0.1


class AVPipeline:
    """Runs both detectors over samples and monitors the fused stream.

    Each sample becomes one stream item whose outputs mix camera
    detections and LIDAR detections (with their 2-D projections), checked
    by the paper's two AV assertions: ``agree`` and ``multibox`` (§5.1).
    The consistency assertions (e.g. ``flicker``) are deliberately absent:
    "we found that the dataset was not sampled frequently enough (at 2 Hz)
    for these assertions".
    """

    def __init__(
        self,
        camera: PinholeCamera,
        config: "AVPipelineConfig | None" = None,
    ) -> None:
        self.camera = camera
        self.config = config if config is not None else AVPipelineConfig()
        database = AssertionDatabase()
        self.agree = AgreeAssertion(
            self.config.agree_iou, self.config.min_projection_area
        )
        self.multibox = MultiboxAssertion(
            self.config.multibox_iou,
            output_filter=lambda o: o.get("sensor") == "camera",
        )
        database.add(self.agree, domain="av")
        database.add(self.multibox, domain="av")
        self.omg = OMG(database)

    @property
    def assertion_names(self) -> list:
        return self.omg.database.names()

    # ------------------------------------------------------------------
    def to_stream(self, samples: list, camera_dets: list, lidar_dets: list) -> list:
        """Fuse per-sample detections from both sensors into stream items.

        ``camera_dets``/``lidar_dets`` are parallel lists over ``samples``
        of 2-D box lists / 3-D box lists. ``multibox`` is restricted to
        camera outputs via its ``output_filter``.
        """
        if not (len(samples) == len(camera_dets) == len(lidar_dets)):
            raise ValueError("samples, camera_dets and lidar_dets must be parallel")
        items = []
        for pos, (sample, cam_boxes, lidar_boxes) in enumerate(
            zip(samples, camera_dets, lidar_dets)
        ):
            outputs = self.fuse_outputs(cam_boxes, lidar_boxes)
            items.append(
                StreamItem(index=pos, timestamp=sample.timestamp, outputs=tuple(outputs))
            )
        return items

    def fuse_outputs(self, cam_boxes: list, lidar_boxes: list) -> list:
        """One sample's fused output list (camera boxes + LIDAR projections)."""
        outputs = [
            {"sensor": "camera", "box": box, "label": box.label, "score": box.score}
            for box in cam_boxes
        ]
        for box3d in lidar_boxes:
            outputs.append(
                {
                    "sensor": "lidar",
                    "box3d": box3d,
                    "box": project_box3d_to_2d(box3d, self.camera),
                    "score": box3d.score,
                }
            )
        return outputs

    def monitor(
        self, samples: list, camera_dets: list, lidar_dets: list
    ) -> MonitorRun:
        """Full pass over fused samples.

        Returns a :class:`~repro.domains.registry.MonitorRun`
        (``.report`` + ``.items``; unpacks like the old 2-tuple).
        """
        items = self.to_stream(samples, camera_dets, lidar_dets)
        return MonitorRun(report=self.omg.monitor(items), items=items)

    # ------------------------------------------------------------------
    # Online / streaming path
    # ------------------------------------------------------------------
    def observe_batch(
        self,
        samples: list,
        camera_dets: list,
        lidar_dets: list,
        *,
        parallel: bool = False,
    ) -> MonitoringReport:
        """Ingest a chunk of fused samples; returns the chunk's report.

        Both AV assertions are per-item, so the online severities equal
        the offline :meth:`monitor` matrix row-for-row.
        """
        if not (len(samples) == len(camera_dets) == len(lidar_dets)):
            raise ValueError("samples, camera_dets and lidar_dets must be parallel")
        outputs = [
            self.fuse_outputs(cam_boxes, lidar_boxes)
            for cam_boxes, lidar_boxes in zip(camera_dets, lidar_dets)
        ]
        return self.omg.observe_batch(
            None,
            outputs,
            timestamps=[sample.timestamp for sample in samples],
            parallel=parallel,
        )

    def run_models(
        self, samples: list, camera_model: Detector, lidar_model: LidarDetector
    ) -> tuple[list, list]:
        """Run both detectors over samples → (camera_dets, lidar_dets)."""
        camera_dets = [camera_model.detect(s.camera_image) for s in samples]
        lidar_dets = [lidar_model.detect(s.point_cloud) for s in samples]
        return camera_dets, lidar_dets
