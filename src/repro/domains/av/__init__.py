"""Autonomous-vehicle domain: LIDAR/camera agreement on the AV world."""

from repro.domains.av.assertions import AgreeAssertion, sensor_agreement
from repro.domains.av.pipeline import AVPipeline, AVPipelineConfig
from repro.domains.av.task import (
    AVActiveLearningTask,
    AVTaskData,
    bootstrap_av_models,
    make_av_task_data,
    run_av_weak_supervision,
)

__all__ = [
    "AVActiveLearningTask",
    "AVPipeline",
    "AVPipelineConfig",
    "AVTaskData",
    "AgreeAssertion",
    "bootstrap_av_models",
    "make_av_task_data",
    "run_av_weak_supervision",
    "sensor_agreement",
]
