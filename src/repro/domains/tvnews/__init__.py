"""TV-news domain: identity/gender/hair consistency over news footage."""

from repro.domains.tvnews.pipeline import (
    TVNewsPipeline,
    TVNewsPipelineConfig,
    news_consistency_spec,
)

__all__ = ["TVNewsPipeline", "TVNewsPipelineConfig", "news_consistency_spec"]
