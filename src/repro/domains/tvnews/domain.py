"""``tvnews`` domain adapter: scene-consistency monitoring via the registry.

Raw unit: one :class:`~repro.worlds.tvnews.Scene` of precomputed face
predictions. Scene clustering is scene-local, so the domain is stateless
per stream: each scene expands independently into one stream item per
sample time (exactly :meth:`TVNewsPipeline.to_stream` on that scene).
The world side needs no model at all — the paper's collaborators shipped
precomputed outputs — which makes this the cheapest domain to serve and
the one the CI smoke test streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.runtime import OMG
from repro.core.seeding import derive_seed
from repro.core.spec import AssertionSuite, ConsistencySpecDecl, SuiteEntry
from repro.domains.registry import Domain, RawItem, register_domain
from repro.domains.tvnews.pipeline import (
    NEWS_ATTRIBUTES,
    TVNewsPipeline,
    TVNewsPipelineConfig,
)
from repro.worlds.tvnews import TVNewsWorld, TVNewsWorldConfig


@dataclass(frozen=True)
class TVNewsDomainConfig:
    """Serving config: pipeline knobs plus the footage generator."""

    pipeline: TVNewsPipelineConfig = TVNewsPipelineConfig()
    world: TVNewsWorldConfig = field(default_factory=TVNewsWorldConfig)
    #: Footage is generated one video segment at a time.
    video_seconds: float = 600.0


@register_domain("tvnews")
class TVNewsDomain(Domain):
    """TV news: identity/gender/hair consistency within scene clusters."""

    @classmethod
    def default_config(cls) -> TVNewsDomainConfig:
        return TVNewsDomainConfig()

    def build_pipeline(self, config: "TVNewsDomainConfig | None" = None) -> TVNewsPipeline:
        """The offline pipeline (the registry entry point experiments use)."""
        return TVNewsPipeline(self._config(config).pipeline)

    def assertion_suite(self, config: "TVNewsDomainConfig | None" = None) -> AssertionSuite:
        """The three ``news`` attribute-consistency assertions, as a spec."""
        return AssertionSuite(
            name="tvnews-builtin",
            version=1,
            domain="tvnews",
            entries=(
                SuiteEntry(
                    spec=ConsistencySpecDecl(
                        name="news",
                        id_fn="tvnews.face_id",
                        attrs_fn="tvnews.face_attrs",
                        attr_keys=tuple(NEWS_ATTRIBUTES),
                    ),
                    tags=("builtin", "tvnews", "consistency"),
                ),
            ),
        )

    def _legacy_monitor(self, config: "TVNewsDomainConfig | None" = None) -> OMG:
        return self.build_pipeline(config).omg

    def build_world(self, seed: int = 0) -> TVNewsWorld:
        return TVNewsWorld(self.config.world, seed=derive_seed(seed, "tvnews", "world"))

    def iter_stream(self, world: TVNewsWorld):
        video_id = 0
        while True:
            for scene in world.generate_video(video_id, self.config.video_seconds):
                yield scene
            video_id += 1

    def item_from_raw(self, raw, state=None) -> list:
        items = self._clusterer.to_stream([raw])
        return [RawItem(list(item.outputs), item.timestamp) for item in items]

    @property
    def _clusterer(self) -> TVNewsPipeline:
        # to_stream's clustering is scene-local and stateless across
        # calls, so one shared pipeline serves every stream.
        clusterer = getattr(self, "_clusterer_cache", None)
        if clusterer is None:
            clusterer = self._clusterer_cache = self.build_pipeline()
        return clusterer
