"""TV-news monitoring pipeline: scene-local face clusters → consistency.

"Given that most TV news hosts do not move much between scenes, we can
assert that the identity, gender, and hair color of faces that highly
overlap within the same scene are consistent" (§2.2). Identifiers are
(scene, spatial cluster) pairs: within a scene, faces are clustered by
box overlap across sample times with the same greedy IoU matching the
video tracker uses. Attributes are the three predicted labels.

The paper could not retrain this domain ("We were unable to access the
training code"), so the pipeline only monitors and measures precision —
exactly what Tables 2/3 report for ``news``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.consistency import ConsistencySpec, generate_assertions
from repro.core.database import AssertionDatabase
from repro.core.runtime import OMG, MonitoringReport
from repro.core.spec import register_predicate
from repro.core.types import StreamItem
from repro.domains.registry import MonitorRun
from repro.tracking.tracker import IoUTracker

#: The three checked attributes, in registration order.
NEWS_ATTRIBUTES = ("identity", "gender", "hair")


@register_predicate("tvnews.face_id")
def face_cluster_identifier(output) -> tuple:
    """``Id``: the scene-local (video, scene, cluster) face identifier."""
    return output["face_id"]


@register_predicate("tvnews.face_attrs")
def face_attributes(output) -> dict:
    """``Attrs``: the three predicted labels checked for consistency."""
    return {
        "identity": output["identity"],
        "gender": output["gender"],
        "hair": output["hair"],
    }


def news_consistency_spec() -> ConsistencySpec:
    """Id = (video, scene, cluster); Attrs = identity/gender/hair."""
    return ConsistencySpec(
        id_fn=lambda o: o["face_id"],
        attrs_fn=lambda o: {
            "identity": o["identity"],
            "gender": o["gender"],
            "hair": o["hair"],
        },
        temporal_threshold=None,
        name="news",
    )


@dataclass(frozen=True)
class TVNewsPipelineConfig:
    """Parameters of the TV-news pipeline."""

    cluster_iou: float = 0.4  # hosts barely move: overlap within a scene is high


class TVNewsPipeline:
    """Builds the ``news`` consistency assertions and monitors footage."""

    def __init__(self, config: "TVNewsPipelineConfig | None" = None) -> None:
        self.config = config if config is not None else TVNewsPipelineConfig()
        self.spec = news_consistency_spec()
        database = AssertionDatabase()
        self.assertions = generate_assertions(self.spec, attr_keys=list(NEWS_ATTRIBUTES))
        for assertion in self.assertions:
            database.add(assertion, domain="tvnews")
        self.omg = OMG(database)

    @property
    def assertion_names(self) -> list:
        return self.omg.database.names()

    # ------------------------------------------------------------------
    def _cluster_scene(self, scene) -> dict:
        """Assign a cluster id to every observation in one scene.

        Returns ``id(observation) → cluster_id``. Uses greedy IoU linking
        over the scene's sample times; clusters are *scene-local*, so the
        resulting identifiers never span a cut.
        """
        by_sample: dict = {}
        for obs in scene.observations:
            by_sample.setdefault(obs.sample_index, []).append(obs)
        tracker = IoUTracker(iou_threshold=self.config.cluster_iou, max_age=1)
        assignment: dict = {}
        for sample_index in sorted(by_sample):
            observations = by_sample[sample_index]
            tracked = tracker.update(sample_index, [o.box for o in observations])
            for obs, t in zip(observations, tracked):
                assignment[id(obs)] = t.track_id
        return assignment

    def to_stream(self, scenes: list) -> list:
        """One stream item per (scene, sample time) with face outputs."""
        items = []
        index = 0
        for scene in scenes:
            clusters = self._cluster_scene(scene)
            by_sample: dict = {}
            for obs in scene.observations:
                by_sample.setdefault(obs.sample_index, []).append(obs)
            for sample_index in sorted(by_sample):
                observations = by_sample[sample_index]
                outputs = tuple(
                    {
                        "face_id": (obs.video_id, obs.scene_id, clusters[id(obs)]),
                        "identity": obs.pred_identity,
                        "gender": obs.pred_gender,
                        "hair": obs.pred_hair,
                        "box": obs.box,
                        "observation": obs,
                    }
                    for obs in observations
                )
                items.append(
                    StreamItem(
                        index=index,
                        timestamp=observations[0].timestamp,
                        outputs=outputs,
                    )
                )
                index += 1
        return items

    def monitor(self, scenes: list) -> MonitorRun:
        """Cluster, build the stream, run the ``news`` assertions.

        Returns a :class:`~repro.domains.registry.MonitorRun` (``.report``
        + ``.items``) — the same shape :meth:`AVPipeline.monitor` and
        :meth:`VideoPipeline.monitor` return, instead of a bare tuple.
        """
        items = self.to_stream(scenes)
        return MonitorRun(report=self.omg.monitor(items), items=items)

    def aggregate_news_severity(self, report: MonitoringReport) -> np.ndarray:
        """Sum the three attribute assertions into one ``news`` severity."""
        return report.severities.sum(axis=1)
