"""Per-domain assertion sets and pipelines for the paper's four workloads.

- :mod:`repro.domains.video` — video analytics on ``night-street``
  (``flicker``, ``appear``, ``multibox``);
- :mod:`repro.domains.av` — autonomous vehicles on the AV world
  (``agree``, ``multibox``);
- :mod:`repro.domains.ecg` — AF classification (the 30 s ``ECG``
  consistency assertion);
- :mod:`repro.domains.tvnews` — TV-news analytics (the ``news``
  consistency assertions over identity/gender/hair color).

Each domain provides the assertion implementations (measured by the
Table 2 LOC bench), an end-to-end pipeline producing
:class:`~repro.core.runtime.MonitoringReport` s, and — where the paper had
training access — an :class:`~repro.core.active_learning.ActiveLearningTask`
plus a weak-supervision entry point.

All four serve through one contract: the :class:`Domain` protocol in
:mod:`repro.domains.registry` (``get_domain("av"|"video"|"tvnews"|"ecg")``),
which :class:`~repro.serve.MonitorService` drives for multi-stream
deployments.
"""

from repro.domains.registry import (
    Domain,
    MonitorRun,
    RawItem,
    domain_names,
    get_domain,
    register_domain,
)

__all__ = [
    "Domain",
    "MonitorRun",
    "RawItem",
    "domain_names",
    "get_domain",
    "register_domain",
]
