"""Evaluation metrics: VOC-style detection mAP and classification metrics.

The paper reports mAP for the video-analytics and AV domains (Figures 4/9,
Table 4) and accuracy for ECG (Figure 5, Table 4); both are implemented
here from scratch.
"""

from repro.metrics.classification import (
    accuracy_score,
    confusion_matrix,
    macro_f1,
    precision_recall_f1,
)
from repro.metrics.detection import (
    DetectionEvaluation,
    average_precision,
    evaluate_detections,
    mean_average_precision,
)

__all__ = [
    "DetectionEvaluation",
    "accuracy_score",
    "average_precision",
    "confusion_matrix",
    "evaluate_detections",
    "macro_f1",
    "mean_average_precision",
    "precision_recall_f1",
]
