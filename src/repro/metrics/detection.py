"""VOC-style object-detection evaluation (per-class AP, mAP).

Implements the standard protocol used by the paper's mAP numbers
(Lin et al., 2014; Everingham et al., 2010): detections are sorted by
confidence across the whole evaluation set; each detection greedily claims
the highest-IoU unmatched ground-truth box of its class in its frame
(IoU ≥ 0.5 by default); AP is the area under the interpolated
precision-recall curve; mAP averages AP over classes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.box2d import Box2D
from repro.geometry.iou import iou_matrix


@dataclass
class DetectionEvaluation:
    """Result of evaluating detections against ground truth.

    Attributes
    ----------
    ap_per_class:
        Class name → average precision in ``[0, 1]`` (NaN when the class
        has no ground-truth instances).
    mean_ap:
        Mean AP over classes that have ground truth, in ``[0, 1]``.
    n_ground_truth:
        Class name → number of ground-truth boxes.
    n_detections:
        Class name → number of detections considered.
    """

    ap_per_class: dict = field(default_factory=dict)
    mean_ap: float = 0.0
    n_ground_truth: dict = field(default_factory=dict)
    n_detections: dict = field(default_factory=dict)

    @property
    def mean_ap_percent(self) -> float:
        """mAP expressed in percent, the unit the paper plots."""
        return 100.0 * self.mean_ap


def average_precision(recall: np.ndarray, precision: np.ndarray) -> float:
    """Area under the interpolated PR curve (continuous VOC2010+ style)."""
    recall = np.asarray(recall, dtype=np.float64)
    precision = np.asarray(precision, dtype=np.float64)
    if recall.shape != precision.shape:
        raise ValueError(f"shape mismatch: {recall.shape} vs {precision.shape}")
    if recall.size == 0:
        return 0.0
    # Envelope: precision at recall r is the max precision at recall >= r.
    mrec = np.concatenate([[0.0], recall, [1.0]])
    mpre = np.concatenate([[0.0], precision, [0.0]])
    mpre = np.maximum.accumulate(mpre[::-1])[::-1]
    changed = np.flatnonzero(mrec[1:] != mrec[:-1])
    return float(np.sum((mrec[changed + 1] - mrec[changed]) * mpre[changed + 1]))


def _ap_for_class(
    detections: list[tuple[int, Box2D]],
    truths_by_frame: dict,
    n_truth: int,
    iou_threshold: float,
) -> float:
    """AP for one class given (frame, box) detections and GT per frame."""
    if n_truth == 0:
        return float("nan")
    if not detections:
        return 0.0
    scores = np.array([d.score for _, d in detections])
    order = np.argsort(-scores, kind="stable")
    claimed: dict = {frame: np.zeros(len(boxes), dtype=bool) for frame, boxes in truths_by_frame.items()}
    tp = np.zeros(len(detections))
    fp = np.zeros(len(detections))
    for rank, det_idx in enumerate(order):
        frame, det = detections[det_idx]
        gt_boxes = truths_by_frame.get(frame, [])
        if not gt_boxes:
            fp[rank] = 1.0
            continue
        ious = iou_matrix([det], gt_boxes)[0]
        best = int(np.argmax(ious))
        if ious[best] >= iou_threshold and not claimed[frame][best]:
            claimed[frame][best] = True
            tp[rank] = 1.0
        else:
            fp[rank] = 1.0
    tp_cum = np.cumsum(tp)
    fp_cum = np.cumsum(fp)
    recall = tp_cum / n_truth
    precision = tp_cum / np.maximum(tp_cum + fp_cum, 1e-12)
    return average_precision(recall, precision)


def evaluate_detections(
    predictions: list,
    ground_truths: list,
    *,
    iou_threshold: float = 0.5,
    classes: "list[str] | None" = None,
) -> DetectionEvaluation:
    """Evaluate per-frame detections against per-frame ground truth.

    Parameters
    ----------
    predictions, ground_truths:
        Parallel lists over frames; each element is a list of
        :class:`~repro.geometry.box2d.Box2D` (predictions carry scores).
    iou_threshold:
        Minimum IoU for a detection to match a ground-truth box.
    classes:
        Restrict evaluation to these class names; default is the union of
        classes appearing in the ground truth.
    """
    if len(predictions) != len(ground_truths):
        raise ValueError(
            f"{len(predictions)} prediction frames vs {len(ground_truths)} ground-truth frames"
        )
    if classes is None:
        classes = sorted({b.label for frame in ground_truths for b in frame})

    result = DetectionEvaluation()
    aps = []
    for cls in classes:
        dets = [
            (frame_idx, box)
            for frame_idx, frame in enumerate(predictions)
            for box in frame
            if box.label == cls
        ]
        truths_by_frame = {}
        n_truth = 0
        for frame_idx, frame in enumerate(ground_truths):
            boxes = [b for b in frame if b.label == cls]
            if boxes:
                truths_by_frame[frame_idx] = boxes
                n_truth += len(boxes)
        ap = _ap_for_class(dets, truths_by_frame, n_truth, iou_threshold)
        result.ap_per_class[cls] = ap
        result.n_ground_truth[cls] = n_truth
        result.n_detections[cls] = len(dets)
        if not np.isnan(ap):
            aps.append(ap)
    result.mean_ap = float(np.mean(aps)) if aps else 0.0
    return result


def mean_average_precision(
    predictions: list,
    ground_truths: list,
    *,
    iou_threshold: float = 0.5,
    classes: "list[str] | None" = None,
) -> float:
    """Convenience wrapper returning only the mAP in ``[0, 1]``."""
    return evaluate_detections(
        predictions, ground_truths, iou_threshold=iou_threshold, classes=classes
    ).mean_ap
