"""Classification metrics for the ECG and TV-news domains."""

from __future__ import annotations

import numpy as np


def _check_pair(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    t = np.asarray(y_true)
    p = np.asarray(y_pred)
    if t.shape != p.shape or t.ndim != 1:
        raise ValueError(f"y_true {t.shape} and y_pred {p.shape} must be equal 1-D shapes")
    return t, p


def accuracy_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of exact matches; 0.0 on empty input."""
    t, p = _check_pair(y_true, y_pred)
    if t.size == 0:
        return 0.0
    return float(np.mean(t == p))


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray, n_classes: int) -> np.ndarray:
    """Dense ``(k, k)`` confusion matrix; rows = truth, columns = prediction."""
    t, p = _check_pair(y_true, y_pred)
    t = t.astype(np.intp)
    p = p.astype(np.intp)
    if t.size and (t.min() < 0 or t.max() >= n_classes or p.min() < 0 or p.max() >= n_classes):
        raise ValueError(f"labels out of range [0, {n_classes})")
    mat = np.zeros((n_classes, n_classes), dtype=np.int64)
    np.add.at(mat, (t, p), 1)
    return mat


def precision_recall_f1(
    y_true: np.ndarray, y_pred: np.ndarray, positive_class: int = 1
) -> tuple[float, float, float]:
    """Binary precision/recall/F1 treating ``positive_class`` as positive.

    Degenerate denominators yield 0.0 rather than NaN.
    """
    t, p = _check_pair(y_true, y_pred)
    tp = float(np.sum((p == positive_class) & (t == positive_class)))
    fp = float(np.sum((p == positive_class) & (t != positive_class)))
    fn = float(np.sum((p != positive_class) & (t == positive_class)))
    precision = tp / (tp + fp) if tp + fp > 0 else 0.0
    recall = tp / (tp + fn) if tp + fn > 0 else 0.0
    f1 = 2 * precision * recall / (precision + recall) if precision + recall > 0 else 0.0
    return precision, recall, f1


def macro_f1(y_true: np.ndarray, y_pred: np.ndarray, n_classes: int) -> float:
    """Unweighted mean of per-class F1 scores."""
    scores = [
        precision_recall_f1(y_true, y_pred, positive_class=c)[2] for c in range(n_classes)
    ]
    return float(np.mean(scores)) if scores else 0.0
