"""Load harness for the network serving front-end (``repro loadtest``).

Drives a real :class:`~repro.serve.net.MonitorServer` over real TCP
sockets (self-hosted on an ephemeral port) with concurrent client
tasks, and measures what the ROADMAP's "heavy traffic" goal actually
needs measured: request latency percentiles (p50/p95/p99), sustained
throughput (items/s), and the backpressure ledger (offered = accepted +
rejected — rejections are explicit ``overloaded`` responses, never
silent drops).

Two load models, the standard pair for serving systems:

- **closed loop** — each client keeps exactly one request in flight
  (send, await, repeat); throughput self-limits to the server's
  capacity, so latency reflects service + batching time.
- **open loop** — clients offer units at a fixed aggregate ``rate``
  regardless of responses (pipelined), which is how real crowds behave;
  at saturation the bounded queue pushes back and the rejected count
  grows instead of latencies growing without bound.

A *saturation sweep* runs one measurement point per entry of
``client_counts`` (each point on a fresh service + server, so state
never leaks between points) and :func:`write_bench` persists the sweep
as ``BENCH_serve.json`` — the committed trajectory later PRs must not
regress (compare p99 and items/s line by line).

``shard_counts`` extends the sweep along a second axis: with
``shards > 1`` each point stands up a whole sharded fleet —
:class:`~repro.fleet.manager.FleetManager` worker processes behind an
in-process :class:`~repro.fleet.router.FleetRouter` — and the clients
drive the router through the identical protocol, so the 1-shard and
N-shard numbers are directly comparable.

Raw units are pre-generated from the domain's seeded worlds *before*
the clock starts (one world per client, cycled), so generation cost
never pollutes latency numbers.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.seeding import derive_seed
from repro.serve.net import MonitorServer, ServerConfig, ServiceClient, ServiceError
from repro.serve.service import MonitorService, ServiceConfig
from repro.utils.io import atomic_write_json

#: Schema version of the ``BENCH_serve.json`` payload.
#: 2: points carry ``shards`` (the sharded-fleet sweep axis).
BENCH_FORMAT = 2


@dataclass(frozen=True)
class LoadTestConfig:
    """One sweep's knobs (see module docstring for the load models).

    ``items`` switches the closed loop from a timed window to exactly
    ``items`` units per client (deterministic work, used by the CI
    smoke); ``duration``/``warmup`` stay time-based either way.
    """

    domain: str = "tvnews"
    client_counts: tuple = (1, 4)
    shard_counts: tuple = (1,)
    mode: str = "closed"
    duration: float = 2.0
    warmup: float = 0.5
    items: "int | None" = None
    rate: float = 200.0
    seed: int = 0
    pool_units: int = 32
    max_batch: int = 32
    max_delay: float = 0.002
    max_pending: int = 1024

    def __post_init__(self) -> None:
        if self.mode not in ("closed", "open"):
            raise ValueError(f"mode must be 'closed' or 'open', got {self.mode!r}")
        if not self.client_counts or any(c < 1 for c in self.client_counts):
            raise ValueError(
                f"client_counts must be >= 1, got {self.client_counts!r}"
            )
        if not self.shard_counts or any(s < 1 for s in self.shard_counts):
            raise ValueError(
                f"shard_counts must be >= 1, got {self.shard_counts!r}"
            )
        if self.duration <= 0 and self.items is None:
            raise ValueError("duration must be > 0 (or give items)")
        if self.warmup < 0:
            raise ValueError(f"warmup must be >= 0, got {self.warmup}")
        if self.items is not None and self.mode != "closed":
            raise ValueError("items is only valid in closed-loop mode")
        if self.items is not None and self.items < 1:
            raise ValueError(f"items must be >= 1, got {self.items}")
        if self.rate <= 0:
            raise ValueError(f"rate must be > 0, got {self.rate}")
        if self.pool_units < 1:
            raise ValueError(f"pool_units must be >= 1, got {self.pool_units}")

    def as_dict(self) -> dict:
        return {
            "domain": self.domain,
            "client_counts": list(self.client_counts),
            "shard_counts": list(self.shard_counts),
            "mode": self.mode,
            "duration": self.duration,
            "warmup": self.warmup,
            "items": self.items,
            "rate": self.rate,
            "seed": self.seed,
            "pool_units": self.pool_units,
            "max_batch": self.max_batch,
            "max_delay": self.max_delay,
            "max_pending": self.max_pending,
        }


@dataclass
class LoadTestPoint:
    """One measurement point of the saturation sweep."""

    clients: int
    mode: str
    shards: int
    elapsed: float
    measured: float
    n_samples: int
    items_per_s: float
    latency_ms: dict
    offered: int
    accepted: int
    rejected: int
    completed: int
    failed: int
    batches: int

    @property
    def ledger_ok(self) -> bool:
        """No silent drops: every offered unit was accepted or rejected."""
        return self.offered == self.accepted + self.rejected

    def as_dict(self) -> dict:
        return {
            "clients": self.clients,
            "mode": self.mode,
            "shards": self.shards,
            "elapsed_s": self.elapsed,
            "measured_s": self.measured,
            "n_samples": self.n_samples,
            "items_per_s": self.items_per_s,
            "latency_ms": self.latency_ms,
            "offered": self.offered,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "completed": self.completed,
            "failed": self.failed,
            "batches": self.batches,
            "ledger_ok": self.ledger_ok,
        }

    def summary_line(self) -> str:
        lat = self.latency_ms
        return (
            f"BENCH_SERVE clients={self.clients} shards={self.shards} "
            f"mode={self.mode} "
            f"p50_ms={_fmt(lat.get('p50'))} p95_ms={_fmt(lat.get('p95'))} "
            f"p99_ms={_fmt(lat.get('p99'))} items_per_s={self.items_per_s:.1f} "
            f"offered={self.offered} accepted={self.accepted} "
            f"rejected={self.rejected}"
        )


def _fmt(value) -> str:
    return "n/a" if value is None else f"{value:.2f}"


@dataclass
class LoadTestResult:
    """The whole sweep: one point per client count."""

    domain: str
    config: LoadTestConfig
    points: list = field(default_factory=list)

    def summary_lines(self) -> list:
        return [point.summary_line() for point in self.points]

    def format_table(self) -> str:
        from repro.utils.tables import format_table

        rows = [
            (
                point.clients,
                point.shards,
                point.mode,
                _fmt(point.latency_ms.get("p50")),
                _fmt(point.latency_ms.get("p95")),
                _fmt(point.latency_ms.get("p99")),
                f"{point.items_per_s:.1f}",
                point.offered,
                point.accepted,
                point.rejected,
                "yes" if point.ledger_ok else "NO",
            )
            for point in self.points
        ]
        return format_table(
            ["Clients", "Shards", "Mode", "p50 ms", "p95 ms", "p99 ms",
             "items/s", "Offered", "Accepted", "Rejected", "Ledger"],
            rows,
            title=f"Load test — domain {self.domain!r}, "
            f"{len(self.points)} point(s)",
        )


def _latency_stats(latencies: list) -> dict:
    if not latencies:
        return {"p50": None, "p95": None, "p99": None, "mean": None, "max": None}
    arr = np.asarray(latencies, dtype=np.float64) * 1000.0
    return {
        "p50": float(np.percentile(arr, 50)),
        "p95": float(np.percentile(arr, 95)),
        "p99": float(np.percentile(arr, 99)),
        "mean": float(arr.mean()),
        "max": float(arr.max()),
    }


def _unit_pools(config: LoadTestConfig, n_clients: int) -> list:
    """Pre-generate ``pool_units`` raw units per client, seeded per
    (sweep seed, client count, client index) so points are independent
    and reproducible."""
    from repro.domains.registry import get_domain

    domain = get_domain(config.domain)
    pools = []
    for k in range(n_clients):
        world = domain.build_world(
            derive_seed(config.seed, "loadtest", n_clients, k)
        )
        stream = domain.iter_stream(world)
        pools.append([next(stream) for _ in range(config.pool_units)])
    return pools


async def _closed_client(
    client: ServiceClient,
    stream_id: str,
    units: list,
    t_end: float,
    warmup_end: float,
    items: "int | None",
    latencies: list,
) -> None:
    loop = asyncio.get_running_loop()
    sent = 0
    while (items is None and loop.time() < t_end) or (
        items is not None and sent < items
    ):
        raw = units[sent % len(units)]
        sent += 1
        t0 = loop.time()
        try:
            await client.ingest(stream_id, raw)
        except ServiceError as exc:
            if exc.type != "overloaded":
                raise
        else:
            if t0 >= warmup_end:
                latencies.append(loop.time() - t0)


async def _open_client(
    client: ServiceClient,
    stream_id: str,
    units: list,
    interval: float,
    t_end: float,
    warmup_end: float,
    latencies: list,
) -> None:
    loop = asyncio.get_running_loop()

    async def track(t0: float, future) -> None:
        envelope = await future
        t1 = loop.time()
        if envelope.get("ok") and t0 >= warmup_end:
            latencies.append(t1 - t0)

    trackers = []
    sent = 0
    next_send = loop.time()
    while True:
        now = loop.time()
        if now >= t_end:
            break
        if now < next_send:
            await asyncio.sleep(min(next_send - now, t_end - now))
            continue
        raw = units[sent % len(units)]
        sent += 1
        t0 = loop.time()
        future = client.submit("ingest", stream_id=stream_id, raw=raw)
        trackers.append(asyncio.create_task(track(t0, future)))
        next_send += interval
    await asyncio.gather(*trackers)


class _SinglePoint:
    """Endpoint for a 1-shard point: one in-process server."""

    def __init__(self, config: LoadTestConfig) -> None:
        self.config = config
        self.server: "MonitorServer | None" = None

    async def start(self) -> tuple:
        self.server = MonitorServer(
            MonitorService(self.config.domain, config=ServiceConfig(parallel=True)),
            ServerConfig(
                max_batch=self.config.max_batch,
                max_delay=self.config.max_delay,
                max_pending=self.config.max_pending,
            ),
        )
        await self.server.start()
        return self.server.host, self.server.port

    async def stop(self) -> None:
        if self.server is not None:
            await self.server.stop()


class _FleetPoint:
    """Endpoint for an N-shard point: worker processes behind a router.

    The workers are real subprocesses (:class:`FleetManager`) so each
    shard gets its own GIL and pipeline; the router runs on the load
    generator's loop and serves the identical protocol, which is what
    makes the 1-shard and N-shard latency columns comparable.
    """

    def __init__(self, config: LoadTestConfig, n_shards: int) -> None:
        self.config = config
        self.n_shards = n_shards
        self.manager = None
        self.router = None
        self._workdir: "str | None" = None

    async def start(self) -> tuple:
        import shutil
        import tempfile

        from repro.fleet.manager import FleetManager
        from repro.fleet.router import FleetRouter

        loop = asyncio.get_running_loop()
        self._workdir = tempfile.mkdtemp(prefix="repro-fleet-loadtest-")
        self.manager = FleetManager(
            self.config.domain,
            self.n_shards,
            workdir=self._workdir,
            max_batch=self.config.max_batch,
            max_delay=self.config.max_delay,
            max_pending=self.config.max_pending,
        )
        try:
            await loop.run_in_executor(None, self.manager.start)
        except Exception:
            shutil.rmtree(self._workdir, ignore_errors=True)
            raise
        self.router = FleetRouter(self.config.domain, self.manager.addresses())
        await self.router.start()
        return self.router.host, self.router.port

    async def stop(self) -> None:
        import shutil

        loop = asyncio.get_running_loop()
        if self.router is not None:
            await self.router.stop()
        if self.manager is not None:
            await loop.run_in_executor(None, self.manager.stop)
        if self._workdir is not None:
            shutil.rmtree(self._workdir, ignore_errors=True)


async def _run_point(
    config: LoadTestConfig, n_clients: int, n_shards: int = 1
) -> LoadTestPoint:
    pools = _unit_pools(config, n_clients)
    endpoint = (
        _SinglePoint(config) if n_shards == 1 else _FleetPoint(config, n_shards)
    )
    host, port = await endpoint.start()
    loop = asyncio.get_running_loop()
    clients = [
        await ServiceClient.connect(host, port) for _ in range(n_clients)
    ]
    try:
        latencies: list = []
        t_start = loop.time()
        warmup_end = t_start + config.warmup
        t_end = warmup_end + config.duration
        if config.mode == "closed":
            tasks = [
                _closed_client(
                    clients[k],
                    f"client-{k}",
                    pools[k],
                    t_end,
                    warmup_end,
                    config.items,
                    latencies,
                )
                for k in range(n_clients)
            ]
        else:
            interval = n_clients / config.rate
            tasks = [
                _open_client(
                    clients[k],
                    f"client-{k}",
                    pools[k],
                    interval,
                    t_end,
                    warmup_end,
                    latencies,
                )
                for k in range(n_clients)
            ]
        await asyncio.gather(*tasks)
        elapsed = loop.time() - t_start
        measured = max(loop.time() - warmup_end, 1e-9)
        stats = await clients[0].stats()
    finally:
        for client in clients:
            await client.close()
        await endpoint.stop()
    return LoadTestPoint(
        clients=n_clients,
        mode=config.mode,
        shards=n_shards,
        elapsed=elapsed,
        measured=measured,
        n_samples=len(latencies),
        items_per_s=len(latencies) / measured,
        latency_ms=_latency_stats(latencies),
        offered=stats["offered"],
        accepted=stats["accepted"],
        rejected=stats["rejected"],
        completed=stats["completed"],
        failed=stats["failed"],
        batches=stats["batches"],
    )


def run_loadtest(config: "LoadTestConfig | None" = None, *, echo=None) -> LoadTestResult:
    """Run the full saturation sweep; one fresh server (or fleet) per
    ``(shards, clients)`` point.

    ``echo`` (e.g. ``print``) receives a progress line per point.
    """
    config = config if config is not None else LoadTestConfig()
    result = LoadTestResult(domain=config.domain, config=config)
    for n_shards in config.shard_counts:
        for n_clients in config.client_counts:
            point = asyncio.run(_run_point(config, n_clients, n_shards))
            result.points.append(point)
            if echo is not None:
                echo(point.summary_line())
    return result


def write_bench(result: LoadTestResult, path: str) -> dict:
    """Persist a sweep as ``BENCH_serve.json`` (atomic write).

    The file is a trajectory artifact: commit it next to the code so a
    later PR's sweep can be diffed point-by-point against this one.
    """
    payload = {
        "bench": "serve_loadtest",
        "format": BENCH_FORMAT,
        "domain": result.domain,
        "created_unix": int(time.time()),
        "config": result.config.as_dict(),
        "points": [point.as_dict() for point in result.points],
    }
    atomic_write_json(payload, path)
    return payload
