"""Asyncio network front-end for :class:`~repro.serve.MonitorService`.

``MonitorService`` was in-process only; this module puts it on the
network so real traffic can reach a monitored fleet: newline-delimited
JSON over TCP (framing in :mod:`repro.utils.framing`), one request
document per line, one response document per request.

Design contract (``tests/serve/test_net.py`` pins each clause):

- **Batching with a max-delay flush.** Ingest requests queue into a
  single pipeline; the worker coalesces up to ``max_batch`` raw units
  per :meth:`MonitorService.ingest_batch_outcomes` call, waiting at most
  ``max_delay`` seconds from the first queued unit — low-rate traffic is
  never parked indefinitely waiting for a full batch.
- **Strict per-stream ordering.** The pipeline is FIFO and batches
  execute one at a time, and ``ingest_batch`` groups preserve arrival
  order per stream — so two requests for the same ``stream_id`` are
  applied in the order the server received them, even when their batches
  interleave many streams or they arrived on different connections.
- **Bounded-queue backpressure, no silent drops.** At most
  ``max_pending`` raw units may be queued; a unit beyond that is
  *rejected immediately* with a typed ``overloaded`` error response.
  Every offered unit is accounted for: ``accepted + rejected ==
  offered`` (:class:`ServerStats`), and every accepted unit eventually
  gets exactly one response.
- **Structured error surfaces.** ``malformed-unit`` (a unit broke its
  session), ``broken-session`` (use of a fail-stopped stream),
  ``unknown-domain`` (request pinned a domain this server does not
  serve), ``unknown-stream``, ``bad-request``, ``overloaded``, and
  ``internal`` — each a typed error payload, never a dropped connection.
  A multi-pair ``ingest_batch`` request reports *every* failed stream
  (per-pair outcomes via :class:`~repro.serve.service.PairOutcome`),
  not just the first.

The protocol (request → response, one JSON document per line)::

    {"op": "ingest", "id": 1, "stream_id": "s0", "raw": <codec unit>}
    → {"id": 1, "ok": true, "result": {"stream_id": "s0", "fires": [...]}}

    {"op": "ingest", "id": 2, "stream_id": "s0", "raw": <bad unit>}
    → {"id": 2, "ok": false,
       "error": {"type": "malformed-unit", "stream_id": "s0",
                 "message": "..."}}

Ops: ``ping``, ``ingest``, ``ingest_batch``, ``report``,
``fleet_report``, ``snapshot``, ``restore``, ``evict``, ``stats``,
``snapshot_stream``, ``restore_stream``, ``apply_suite``. The last
three exist for the sharded fleet (:mod:`repro.fleet`): per-stream
snapshot/restore are the two halves of a live migration, and
``apply_suite`` lets the router reconfigure every shard in lockstep.
Any request may carry ``"domain"``; a mismatch with the served domain is
an ``unknown-domain`` error. See the README's "Network serving & load
testing" section for the full payload reference.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.core.runtime import MonitoringReport
from repro.core.spec import AssertionSuite
from repro.serve.service import (
    BrokenSessionError,
    FleetReport,
    MonitorService,
    PairOutcome,
)
from repro.utils.codec import from_jsonable, to_jsonable
from repro.utils.framing import MAX_FRAME_BYTES, FrameError, decode_frame, encode_frame

#: Protocol version, echoed by ``ping``.
PROTOCOL_VERSION = 1

#: Queue sentinel that tells the worker to drain out.
_SHUTDOWN = object()


@dataclass(frozen=True)
class ServerConfig:
    """Network and batching knobs of :class:`MonitorServer`.

    Attributes
    ----------
    host / port:
        Bind address; port 0 picks an ephemeral port (read it back from
        :attr:`MonitorServer.port`).
    max_batch:
        Raw-unit cap per coalesced ``ingest_batch`` flush.
    max_delay:
        Seconds the first queued unit of a batch may wait for company
        before the batch flushes anyway.
    max_pending:
        Bound on queued-but-unfinished raw units; admission beyond it is
        rejected with an ``overloaded`` error (never silently dropped).
    max_frame_bytes:
        Per-line bound on both received and sent frames.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_batch: int = 32
    max_delay: float = 0.005
    max_pending: int = 1024
    max_frame_bytes: int = MAX_FRAME_BYTES

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {self.max_delay}")
        if self.max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {self.max_pending}")
        if self.max_frame_bytes < 1:
            raise ValueError(
                f"max_frame_bytes must be >= 1, got {self.max_frame_bytes}"
            )


@dataclass
class ServerStats:
    """Raw-unit accounting; the no-silent-drops ledger.

    ``offered == accepted + rejected_overload + rejected_bad`` at every
    instant, and once the pipeline drains, ``completed + failed ==
    accepted`` — every accepted unit produced exactly one ok/error
    response. ``per_stream`` breaks ``completed``/``failed`` down by
    stream id (fleet totals alone cannot prove a migrated stream was
    neither double-ingested nor dropped; the per-stream ledger can).
    """

    offered: int = 0
    accepted: int = 0
    rejected_overload: int = 0
    rejected_bad: int = 0
    completed: int = 0
    failed: int = 0
    batches: int = 0
    per_stream: dict = field(default_factory=dict)

    @property
    def rejected(self) -> int:
        return self.rejected_overload + self.rejected_bad

    def count_outcome(self, stream_id: str, ok: bool) -> None:
        """Account one finished unit, fleet-wide and per stream."""
        entry = self.per_stream.setdefault(
            stream_id, {"completed": 0, "failed": 0}
        )
        if ok:
            self.completed += 1
            entry["completed"] += 1
        else:
            self.failed += 1
            entry["failed"] += 1

    def as_dict(self) -> dict:
        return {
            "offered": self.offered,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "rejected_overload": self.rejected_overload,
            "rejected_bad": self.rejected_bad,
            "completed": self.completed,
            "failed": self.failed,
            "batches": self.batches,
            "per_stream": {
                stream_id: dict(entry)
                for stream_id, entry in self.per_stream.items()
            },
        }


@dataclass
class _Request:
    """One queued protocol request, bound to its connection."""

    op: str
    request_id: object
    conn: "_Connection"
    payload: dict
    #: Decoded ``(stream_id, raw)`` pairs for ingest ops.
    pairs: list = field(default_factory=list)

    @property
    def n_units(self) -> int:
        return len(self.pairs)


class _Connection:
    """Per-connection state: an outgoing queue drained by a writer task,
    so one slow consumer never stalls the shared ingest pipeline."""

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.outgoing: "asyncio.Queue" = asyncio.Queue()
        self.writer_task: "asyncio.Task | None" = None
        self.closed = False

    def send(self, document: dict) -> None:
        if not self.closed:
            self.outgoing.put_nowait(encode_frame(document))

    async def drain_writer(self) -> None:
        try:
            while True:
                data = await self.outgoing.get()
                if data is None:
                    break
                self.writer.write(data)
                await self.writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self.closed = True
            self.writer.close()


class MonitorServer:
    """Serve one :class:`MonitorService` fleet over TCP (see module doc).

    The server owns a single worker task: connection handlers only
    validate, admit, and enqueue; the worker coalesces batches, drives
    the service (in a thread, so the event loop keeps accepting and
    rejecting while a batch is in flight), and routes responses back.
    The service must not be touched by other threads while the server
    runs.

    Usage::

        server = MonitorServer(MonitorService("tvnews"))
        await server.start()
        ...  # clients connect to server.host:server.port
        await server.stop()
    """

    def __init__(
        self, service: MonitorService, config: "ServerConfig | None" = None
    ) -> None:
        self.service = service
        self.config = config if config is not None else ServerConfig()
        self.stats = ServerStats()
        self._queue: "asyncio.Queue" = asyncio.Queue()
        self._pending_units = 0
        self._server: "asyncio.base_events.Server | None" = None
        self._worker_task: "asyncio.Task | None" = None
        self._connections: "set[_Connection]" = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        if self._server is not None:
            raise RuntimeError("server already started")
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            limit=self.config.max_frame_bytes + 1024,
        )
        self._worker_task = asyncio.create_task(self._worker())

    @property
    def host(self) -> str:
        return self._bound_address()[0]

    @property
    def port(self) -> int:
        return self._bound_address()[1]

    def _bound_address(self) -> tuple:
        if self._server is None:
            raise RuntimeError("server not started")
        return self._server.sockets[0].getsockname()[:2]

    async def stop(self) -> None:
        """Stop accepting, drain queued work, close every connection."""
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None
        if self._worker_task is not None:
            self._queue.put_nowait(_SHUTDOWN)
            await self._worker_task
            self._worker_task = None
        for conn in list(self._connections):
            conn.outgoing.put_nowait(None)
            if conn.writer_task is not None:
                await conn.writer_task
        self._connections.clear()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    # ------------------------------------------------------------------
    # Connection handling: validate, admit, enqueue
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(writer)
        conn.writer_task = asyncio.create_task(conn.drain_writer())
        self._connections.add(conn)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, ConnectionError):
                    # An overlong line cannot be resynced reliably —
                    # answer once and hang up.
                    conn.send(_error_doc(None, "bad-request", "frame too long"))
                    break
                if not line:
                    break
                self._handle_line(line, conn)
        finally:
            self._connections.discard(conn)
            conn.outgoing.put_nowait(None)
            await conn.writer_task

    def _handle_line(self, line: bytes, conn: _Connection) -> None:
        try:
            request = decode_frame(line, max_bytes=self.config.max_frame_bytes)
        except FrameError as exc:
            conn.send(_error_doc(None, "bad-request", str(exc)))
            return
        if not isinstance(request, dict) or not isinstance(request.get("op"), str):
            conn.send(_error_doc(None, "bad-request", 'expected {"op": ..., ...}'))
            return
        request_id = request.get("id")
        op = request["op"]
        domain = request.get("domain")
        if domain is not None and domain != self.service.domain.name:
            conn.send(
                _error_doc(
                    request_id,
                    "unknown-domain",
                    f"this server serves domain {self.service.domain.name!r}, "
                    f"not {domain!r}",
                    domain=self.service.domain.name,
                )
            )
            return
        if op == "ping":
            conn.send(
                {
                    "id": request_id,
                    "ok": True,
                    "result": {
                        "domain": self.service.domain.name,
                        "protocol": PROTOCOL_VERSION,
                    },
                }
            )
            return
        if op in ("ingest", "ingest_batch"):
            self._admit_ingest(op, request_id, request, conn)
            return
        if op in (
            "report",
            "fleet_report",
            "snapshot",
            "restore",
            "evict",
            "stats",
            "snapshot_stream",
            "restore_stream",
            "apply_suite",
        ):
            self._queue.put_nowait(_Request(op, request_id, conn, request))
            return
        conn.send(_error_doc(request_id, "bad-request", f"unknown op {op!r}"))

    def _admit_ingest(
        self, op: str, request_id, request: dict, conn: _Connection
    ) -> None:
        try:
            if op == "ingest":
                raw_pairs = [(request["stream_id"], request["raw"])]
            else:
                raw_pairs = [(sid, raw) for sid, raw in request["pairs"]]
            if not all(isinstance(sid, str) for sid, _raw in raw_pairs):
                raise TypeError("stream ids must be strings")
        except (KeyError, TypeError, ValueError):
            self.stats.offered += 1
            self.stats.rejected_bad += 1
            conn.send(
                _error_doc(
                    request_id,
                    "bad-request",
                    "ingest needs stream_id+raw; ingest_batch needs "
                    "pairs=[[stream_id, raw], ...]",
                )
            )
            return
        self.stats.offered += len(raw_pairs)
        budget = self.config.max_pending - self._pending_units
        if len(raw_pairs) > budget:
            self.stats.rejected_overload += len(raw_pairs)
            conn.send(
                _error_doc(
                    request_id,
                    "overloaded",
                    f"{self._pending_units} unit(s) pending of "
                    f"{self.config.max_pending} allowed; retry later",
                    pending=self._pending_units,
                    limit=self.config.max_pending,
                )
            )
            return
        try:
            pairs = [(sid, from_jsonable(raw)) for sid, raw in raw_pairs]
        except (TypeError, ValueError) as exc:
            self.stats.rejected_bad += len(raw_pairs)
            conn.send(
                _error_doc(
                    request_id,
                    "malformed-unit",
                    f"raw unit does not decode: {exc}",
                )
            )
            return
        self.stats.accepted += len(pairs)
        self._pending_units += len(pairs)
        self._queue.put_nowait(_Request(op, request_id, conn, request, pairs=pairs))

    # ------------------------------------------------------------------
    # Worker: coalesce, flush, respond
    # ------------------------------------------------------------------
    async def _worker(self) -> None:
        loop = asyncio.get_running_loop()
        carry = None
        while True:
            item = carry if carry is not None else await self._queue.get()
            carry = None
            if item is _SHUTDOWN:
                return
            if item.op not in ("ingest", "ingest_batch"):
                await self._execute_control(item)
                continue
            batch = [item]
            n_units = item.n_units
            deadline = loop.time() + self.config.max_delay
            while n_units < self.config.max_batch:
                remaining = deadline - loop.time()
                try:
                    if remaining <= 0:
                        nxt = self._queue.get_nowait()
                    else:
                        nxt = await asyncio.wait_for(self._queue.get(), remaining)
                except (asyncio.QueueEmpty, asyncio.TimeoutError):
                    break
                if nxt is _SHUTDOWN or nxt.op not in ("ingest", "ingest_batch"):
                    carry = nxt  # flush first, then handle it in order
                    break
                batch.append(nxt)
                n_units += nxt.n_units
            await self._flush(batch, loop)

    async def _flush(self, batch: list, loop) -> None:
        pairs: list = []
        slices = []
        for item in batch:
            start = len(pairs)
            pairs.extend(item.pairs)
            slices.append((item, start, len(pairs)))
        self.stats.batches += 1
        try:
            outcomes = await loop.run_in_executor(
                None, lambda: self.service.ingest_batch_outcomes(pairs)
            )
        except Exception as exc:  # e.g. batch wider than the LRU bound
            for item, _start, _stop in slices:
                item.conn.send(
                    _error_doc(
                        item.request_id,
                        "internal",
                        f"{type(exc).__name__}: {exc}",
                    )
                )
            for stream_id, _raw in pairs:
                self.stats.count_outcome(stream_id, ok=False)
            self._pending_units -= len(pairs)
            return
        for item, start, stop in slices:
            item.conn.send(self._ingest_response(item, outcomes[start:stop]))
        self._pending_units -= len(pairs)

    def _ingest_response(self, item: _Request, outcomes: list) -> dict:
        results = []
        failed_streams: "OrderedDict[str, bool]" = OrderedDict()
        for outcome in outcomes:
            self.stats.count_outcome(outcome.stream_id, ok=outcome.ok)
            if outcome.ok:
                results.append(
                    {
                        "ok": True,
                        "stream_id": outcome.stream_id,
                        "fires": [fire.record for fire in outcome.fires],
                    }
                )
            else:
                failed_streams[outcome.stream_id] = True
                results.append(
                    {"ok": False, "error": _outcome_error(outcome)}
                )
        if item.op == "ingest":
            (result,) = results
            if result["ok"]:
                return {"id": item.request_id, "ok": True, "result": result}
            return {"id": item.request_id, "ok": False, "error": result["error"]}
        # A multi-pair batch reports every failed stream, not just the
        # first — the per-pair outcomes plus a summary list.
        return {
            "id": item.request_id,
            "ok": not failed_streams,
            "result": {
                "results": results,
                "failed_streams": list(failed_streams),
            },
        }

    async def _execute_control(self, item: _Request) -> None:
        loop = asyncio.get_running_loop()
        try:
            result = await loop.run_in_executor(None, lambda: self._control(item))
        except KeyError as exc:
            item.conn.send(
                _error_doc(
                    item.request_id,
                    "unknown-stream",
                    f"no live stream {exc.args[0]!r}",
                )
            )
            return
        except BrokenSessionError as exc:
            item.conn.send(
                _error_doc(item.request_id, "broken-session", str(exc))
            )
            return
        except ValueError as exc:
            item.conn.send(_error_doc(item.request_id, "bad-request", str(exc)))
            return
        except Exception as exc:
            item.conn.send(
                _error_doc(
                    item.request_id, "internal", f"{type(exc).__name__}: {exc}"
                )
            )
            return
        item.conn.send({"id": item.request_id, "ok": True, "result": result})

    def _control(self, item: _Request) -> dict:
        # Runs on an executor thread; the worker awaits it, so the
        # service still sees strictly serialized access.
        op, request = item.op, item.payload
        if op == "report":
            stream_id = request.get("stream_id")
            if not isinstance(stream_id, str):
                raise ValueError("report needs a stream_id")
            return {
                "stream_id": stream_id,
                "report": self.service.report(stream_id),
            }
        if op == "fleet_report":
            fleet = self.service.fleet_report()
            return {
                "domain": fleet.domain,
                "stream_reports": dict(fleet.stream_reports),
                "aggregate": fleet.aggregate,
                "row_offsets": fleet.row_offsets,
            }
        if op == "snapshot":
            return {"snapshot": self.service.snapshot()}
        if op == "restore":
            snapshot = request.get("snapshot")
            if not isinstance(snapshot, dict):
                raise ValueError("restore needs a snapshot payload")
            self.service.restore(snapshot)
            return {"streams": self.service.stream_ids()}
        if op == "evict":
            stream_id = request.get("stream_id")
            if not isinstance(stream_id, str):
                raise ValueError("evict needs a stream_id")
            self.service.evict(stream_id)
            return {"stream_id": stream_id}
        if op == "snapshot_stream":
            # One stream's restorable session snapshot — the migration
            # read half. Queued behind any in-flight ingest batches, so
            # the payload always sits at a raw-unit boundary.
            stream_id = request.get("stream_id")
            if not isinstance(stream_id, str):
                raise ValueError("snapshot_stream needs a stream_id")
            session = self.service.session_snapshot(stream_id)
            return {
                "stream_id": stream_id,
                "session": session,
                "n_raw": session["n_raw"],
            }
        if op == "restore_stream":
            # The migration write half: re-admit one stream exactly
            # where another shard's snapshot_stream left it.
            stream_id = request.get("stream_id")
            session = request.get("session")
            if not isinstance(stream_id, str) or not isinstance(session, dict):
                raise ValueError("restore_stream needs stream_id + session")
            restored = self.service.restore_session(stream_id, session)
            return {"stream_id": stream_id, "n_raw": restored.n_raw}
        if op == "apply_suite":
            suite_payload = request.get("suite")
            if not isinstance(suite_payload, dict):
                raise ValueError("apply_suite needs a suite payload")
            try:
                suite = from_jsonable(suite_payload)
            except (KeyError, TypeError, ValueError) as exc:
                raise ValueError(f"suite payload does not decode: {exc}") from exc
            if not isinstance(suite, AssertionSuite):
                raise ValueError(
                    "suite payload does not decode to an AssertionSuite "
                    f"(got {type(suite).__name__})"
                )
            tick = request.get("tick")
            if tick is not None and not isinstance(tick, int):
                raise ValueError("apply_suite tick must be an integer")
            diffs = self.service.apply_suite(suite, tick=tick)
            return {"streams": diffs}
        # stats (reads only counters + session ids; still serialized)
        payload = self.stats.as_dict()
        payload["pending"] = self._pending_units
        payload["streams"] = len(self.service)
        payload["sessions"] = self.service.session_units()
        payload["domain"] = self.service.domain.name
        return payload


def _error_doc(request_id, error_type: str, message: str, **extra) -> dict:
    error = {"type": error_type, "message": message}
    error.update(extra)
    return {"id": request_id, "ok": False, "error": error}


def _outcome_error(outcome: PairOutcome) -> dict:
    """Typed wire error for one failed :class:`PairOutcome`."""
    exc = outcome.error
    if outcome.skipped or isinstance(exc, BrokenSessionError):
        error_type = "broken-session"
        message = (
            f"stream {outcome.stream_id!r} is broken"
            + (
                " (an earlier unit of this stream failed in the same batch)"
                if outcome.skipped
                else f": {exc}"
            )
        )
    else:
        error_type = "malformed-unit"
        message = f"unit broke stream {outcome.stream_id!r}: {type(exc).__name__}: {exc}"
    return {
        "type": error_type,
        "stream_id": outcome.stream_id,
        "message": message,
    }


# ----------------------------------------------------------------------
# Client
# ----------------------------------------------------------------------
class ServiceError(Exception):
    """A typed error response from the server (``ok: false``)."""

    def __init__(self, error: dict) -> None:
        self.error = error if isinstance(error, dict) else {"message": str(error)}
        self.type = self.error.get("type", "unknown")
        super().__init__(f"{self.type}: {self.error.get('message', '')}")


class ServiceClient:
    """Asyncio NDJSON client for :class:`MonitorServer`.

    Supports both call-and-wait (:meth:`request` and the typed helpers)
    and pipelining (:meth:`submit`, which returns a future resolving to
    the raw response envelope — what the open-loop load generator uses).
    Request ids are assigned per connection; responses correlate by id,
    so many requests may be in flight at once.
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._futures: "dict[int, asyncio.Future]" = {}
        self._next_id = 0
        self._reader_task = asyncio.create_task(self._read_responses())

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServiceClient":
        reader, writer = await asyncio.open_connection(
            host, port, limit=MAX_FRAME_BYTES + 1024
        )
        return cls(reader, writer)

    @property
    def connected(self) -> bool:
        """False once the server hung up (or :meth:`close` ran).

        The reader task fails every pending future *before* it finishes,
        so when this turns False no submitted request can still be left
        hanging — callers (the fleet router's shard links) check it to
        avoid writing into a dead transport, where the bytes would
        vanish without an error.
        """
        return not self._reader_task.done()

    async def close(self) -> None:
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except ConnectionError:
            pass
        self._fail_pending(ConnectionError("client closed"))

    async def _read_responses(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                response = decode_frame(line)
                future = self._futures.pop(response.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(response)
        except (FrameError, ConnectionError, ValueError) as exc:
            self._fail_pending(exc)
        else:
            self._fail_pending(ConnectionError("server closed the connection"))

    def _fail_pending(self, exc: Exception) -> None:
        for future in self._futures.values():
            if not future.done():
                future.set_exception(exc)
        self._futures.clear()

    def submit(self, op: str, **fields) -> "asyncio.Future":
        """Send one request without waiting; resolves to the envelope."""
        request_id = self._next_id
        self._next_id += 1
        future = asyncio.get_running_loop().create_future()
        self._futures[request_id] = future
        request = {"op": op, "id": request_id}
        request.update(fields)
        self._writer.write(encode_frame(request))
        return future

    async def request(self, op: str, **fields) -> dict:
        """Send one request, await its response, raise on ``ok: false``."""
        envelope = await self.submit(op, **fields)
        if not envelope.get("ok"):
            raise ServiceError(envelope.get("error"))
        return envelope.get("result") or {}

    # -- typed helpers -------------------------------------------------
    async def ping(self) -> dict:
        return await self.request("ping")

    async def ingest(self, stream_id: str, raw) -> list:
        """Feed one raw unit; returns decoded fresh AssertionRecords."""
        result = await self.request("ingest", stream_id=stream_id, raw=raw)
        return [from_jsonable(record) for record in result["fires"]]

    async def ingest_batch(self, pairs: list) -> dict:
        """Feed many ``(stream_id, raw)`` pairs as one request.

        Returns the result document: per-pair ``results`` (fires decoded)
        plus ``failed_streams`` naming every stream that failed. Unlike
        :meth:`ingest`, per-stream failures do not raise — inspect the
        outcomes, exactly like
        :meth:`MonitorService.ingest_batch_outcomes`.
        """
        envelope = await self.submit(
            "ingest_batch", pairs=[[sid, raw] for sid, raw in pairs]
        )
        if envelope.get("result") is None:
            raise ServiceError(envelope.get("error"))
        result = envelope["result"]
        for entry in result["results"]:
            if entry.get("ok"):
                entry["fires"] = [from_jsonable(r) for r in entry["fires"]]
        return result

    async def report(self, stream_id: str) -> MonitoringReport:
        result = await self.request("report", stream_id=stream_id)
        return from_jsonable(result["report"])

    async def fleet_report(self) -> FleetReport:
        result = await self.request("fleet_report")
        return FleetReport(
            domain=result["domain"],
            stream_reports=OrderedDict(
                (sid, from_jsonable(report))
                for sid, report in result["stream_reports"].items()
            ),
            aggregate=from_jsonable(result["aggregate"]),
            row_offsets=result["row_offsets"],
        )

    async def snapshot(self) -> dict:
        return (await self.request("snapshot"))["snapshot"]

    async def restore(self, snapshot: dict) -> list:
        return (await self.request("restore", snapshot=snapshot))["streams"]

    async def evict(self, stream_id: str) -> None:
        await self.request("evict", stream_id=stream_id)

    async def snapshot_stream(self, stream_id: str) -> dict:
        """One stream's session snapshot (the migration read half)."""
        return await self.request("snapshot_stream", stream_id=stream_id)

    async def restore_stream(self, stream_id: str, session: dict) -> dict:
        """Restore one session payload (the migration write half)."""
        return await self.request(
            "restore_stream", stream_id=stream_id, session=session
        )

    async def apply_suite(self, suite, tick: "int | None" = None) -> dict:
        """Hot-swap the assertion suite on the server; returns diffs."""
        return await self.request(
            "apply_suite", suite=to_jsonable(suite), tick=tick
        )

    async def stats(self) -> dict:
        return await self.request("stats")


class ConnectionLostError(ConnectionError):
    """Raised by :class:`ReconnectingClient` once its retry budget is
    spent: the server stayed unreachable through every backoff attempt.

    Carries ``attempts`` (connection attempts made) and ``last_error``
    (the final underlying failure) so callers can log a precise story.
    """

    def __init__(self, message: str, *, attempts: int, last_error=None):
        super().__init__(message)
        self.attempts = attempts
        self.last_error = last_error


class ReconnectingClient:
    """A :class:`ServiceClient` wrapper that survives server bounces.

    A plain client's in-flight requests die with the connection; this
    wrapper redials with bounded exponential backoff (``retries``
    attempts, ``backoff`` doubling up to ``max_backoff`` seconds) and —
    for :meth:`request` — resends the request on the fresh connection.

    Semantics are **at-least-once**: a request whose connection died
    mid-flight may have been applied before the crash, so a resent
    ingest can be ingested twice. That is fine for idempotent control
    ops (``report``, ``stats``, ``snapshot``...) and for callers that
    tolerate duplicates; callers needing exactly-once must not resend
    (the fleet router's shard links deliberately fail such requests with
    ``shard-unavailable`` instead of using this wrapper for ingest).

    Once ``retries`` consecutive redials fail, every method raises
    :class:`ConnectionLostError` naming the attempt count and the last
    underlying error.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        retries: int = 5,
        backoff: float = 0.05,
        max_backoff: float = 1.0,
    ) -> None:
        if retries < 1:
            raise ValueError(f"retries must be >= 1, got {retries}")
        self.host = host
        self.port = port
        self.retries = retries
        self.backoff = backoff
        self.max_backoff = max_backoff
        self._client: "ServiceClient | None" = None

    @classmethod
    async def connect(cls, host: str, port: int, **knobs) -> "ReconnectingClient":
        client = cls(host, port, **knobs)
        await client._ensure_client()
        return client

    async def _ensure_client(self) -> ServiceClient:
        if self._client is not None:
            return self._client
        delay = self.backoff
        last_error: "Exception | None" = None
        for attempt in range(1, self.retries + 1):
            try:
                self._client = await ServiceClient.connect(self.host, self.port)
                return self._client
            except OSError as exc:
                last_error = exc
                if attempt < self.retries:
                    await asyncio.sleep(delay)
                    delay = min(delay * 2, self.max_backoff)
        raise ConnectionLostError(
            f"{self.host}:{self.port} unreachable after {self.retries} "
            f"attempt(s): {last_error}",
            attempts=self.retries,
            last_error=last_error,
        )

    async def _drop_client(self) -> None:
        if self._client is not None:
            client, self._client = self._client, None
            await client.close()

    async def close(self) -> None:
        await self._drop_client()

    async def request(self, op: str, **fields) -> dict:
        """Call-and-wait with redial-and-resend (at-least-once).

        :class:`ServiceError` (a typed ``ok: false`` response) is *not*
        retried — the server answered; only transport failures are.
        """
        last_error: "Exception | None" = None
        for _attempt in range(self.retries):
            client = await self._ensure_client()
            try:
                return await client.request(op, **fields)
            except ServiceError:
                raise
            except (ConnectionError, FrameError, OSError) as exc:
                last_error = exc
                await self._drop_client()
        raise ConnectionLostError(
            f"request {op!r} to {self.host}:{self.port} failed after "
            f"{self.retries} attempt(s): {last_error}",
            attempts=self.retries,
            last_error=last_error,
        )

    # -- typed helpers (same shapes as ServiceClient) ------------------
    async def ping(self) -> dict:
        return await self.request("ping")

    async def ingest(self, stream_id: str, raw) -> list:
        result = await self.request("ingest", stream_id=stream_id, raw=raw)
        return [from_jsonable(record) for record in result["fires"]]

    async def report(self, stream_id: str) -> MonitoringReport:
        result = await self.request("report", stream_id=stream_id)
        return from_jsonable(result["report"])

    async def stats(self) -> dict:
        return await self.request("stats")
