"""``MonitorService``: many keyed assertion-monitored streams, one process.

The ROADMAP's north star is serving "heavy traffic from millions of
users"; the runtime so far monitored exactly one stream per
:class:`~repro.core.runtime.OMG` instance. This module adds the serving
layer on top of the :mod:`repro.domains.registry` contract:

- ``service.session(stream_id)`` — an independent streaming session per
  key (its own runtime, its own per-stream adapter state), created on
  first use;
- ``service.ingest(stream_id, raw)`` / ``service.ingest_batch(pairs)`` —
  raw domain units in, fresh fire records out, with the batch form
  fanning independent streams across a thread pool (results are
  bit-identical to the serial path);
- LRU capacity bounds and TTL idle expiry with an ``on_evict`` hook;
- per-stream and fleet-aggregate :class:`MonitoringReport` s;
- ``on_fire`` routing that tags every record with its stream id;
- ``snapshot()`` / ``restore()`` — the whole fleet's evaluator state as
  one JSON payload, so sessions checkpoint and resume bit-identically
  (see :meth:`repro.core.runtime.OMG.snapshot`);
- ``apply_suite(suite, tick=…)`` — live reconfiguration: hot-add,
  remove, and re-weight assertions across every session at a raw-unit
  boundary from a declarative
  :class:`~repro.core.spec.AssertionSuite` (which also templates new
  sessions and rides along in snapshots).

Determinism contract: an interleaved multi-stream ingest produces, per
stream, exactly the report a solo run over that stream's items produces
— which by the streaming-equivalence invariant equals an offline
:meth:`OMG.monitor` pass — including across a snapshot/restore cycle
(``tests/serve/test_service.py``).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.core.runtime import OMG, MonitoringReport
from repro.core.spec import AssertionSuite, compile_suite
from repro.core.types import AssertionRecord
from repro.domains.registry import Domain, get_domain
from repro.utils.codec import from_jsonable, to_jsonable

#: Version tag of the :meth:`MonitorService.snapshot` payload layout.
SERVICE_SNAPSHOT_FORMAT = 1


class BrokenSessionError(RuntimeError):
    """Use of a session that fail-stopped on an earlier unit.

    A ``RuntimeError`` subclass so pre-existing ``except RuntimeError``
    handlers keep working; the network front-end (:mod:`repro.serve.net`)
    types on it to emit a ``broken-session`` error payload instead of a
    generic failure.
    """


class BatchIngestError(RuntimeError):
    """One or more stream groups of an :meth:`MonitorService.ingest_batch`
    failed.

    Carries *every* failed stream, not just the first: ``failures`` maps
    each failed ``stream_id`` to the exception that broke it, in batch
    group order. Sibling streams' units were still ingested and their
    fires dispatched before this was raised. A ``RuntimeError`` subclass
    (with each underlying error quoted in the message) so callers that
    matched the old single-exception behavior keep working.
    """

    def __init__(self, failures: "OrderedDict[str, Exception]") -> None:
        self.failures = failures
        detail = "; ".join(
            f"{stream_id!r} ({type(exc).__name__}: {exc})"
            for stream_id, exc in failures.items()
        )
        super().__init__(
            f"ingest_batch failed on {len(failures)} stream(s): {detail}"
        )


@dataclass(frozen=True)
class PairOutcome:
    """Per-pair result of :meth:`MonitorService.ingest_batch_outcomes`.

    Exactly one of ``fires`` / ``error`` is set. ``skipped`` marks a pair
    that was never attempted because an *earlier* unit of the same stream
    broke the session within the same batch (its ``error`` is that
    earlier exception) — the network server reports these as
    ``broken-session`` rather than blaming the unit itself.
    """

    stream_id: str
    fires: "list | None" = None
    error: "Exception | None" = None
    skipped: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass(frozen=True)
class StreamFire:
    """An assertion fire with stream provenance (``on_fire`` payload)."""

    stream_id: str
    record: AssertionRecord


@dataclass(frozen=True)
class ServiceConfig:
    """Service-level knobs (domain knobs live in the domain's config).

    Attributes
    ----------
    max_sessions:
        LRU bound on live sessions; ``None`` = unbounded. When a new
        session would exceed it, the least-recently-used session is
        evicted (``on_evict`` hooks fire first, e.g. to checkpoint it).
    session_ttl:
        Idle expiry in seconds (measured on the service clock); ``None``
        = never. Expired sessions are purged (``on_evict`` hooks firing)
        on the next service access — ``session``/``ingest``/``report``/
        ``fleet_report``/``snapshot``.
    parallel:
        Default for :meth:`MonitorService.ingest_batch`'s thread fan-out.
    max_workers:
        Thread-pool width for the batch fan-out; ``None`` lets the
        executor pick.
    snapshot_on_evict:
        When True, :meth:`MonitorService.evict` captures the session's
        restorable snapshot *before* ``on_evict`` hooks fire and exposes
        it as ``session.evict_snapshot`` (``None`` for broken sessions).
        Hooks and callers can persist it and later re-admit the stream
        with :meth:`MonitorService.restore_session` — so LRU/TTL eviction
        never silently discards a stream's history (the improvement loop
        relies on this).
    """

    max_sessions: "int | None" = None
    session_ttl: "float | None" = None
    parallel: bool = True
    max_workers: "int | None" = None
    snapshot_on_evict: bool = False

    def __post_init__(self) -> None:
        if self.max_sessions is not None and self.max_sessions < 1:
            raise ValueError(f"max_sessions must be >= 1, got {self.max_sessions}")
        if self.session_ttl is not None and self.session_ttl <= 0:
            raise ValueError(f"session_ttl must be > 0, got {self.session_ttl}")


class StreamSession:
    """One keyed stream: a fresh runtime plus per-stream adapter state.

    Ingestion is fail-stop: an exception while normalizing or observing
    a unit can leave adapter state and monitor state half-advanced, so
    the session marks itself **broken** and every later ``ingest`` /
    ``report`` / ``snapshot`` raises, rather than silently reporting
    severities no solo run over the same valid units would produce.
    Evict a broken session and start the stream fresh.
    """

    def __init__(
        self,
        stream_id: str,
        domain: Domain,
        now: float,
        suite: "AssertionSuite | None" = None,
        *,
        _monitor: "OMG | None" = None,
    ) -> None:
        self.stream_id = stream_id
        self.domain = domain
        #: The declarative suite this session monitors with (``None`` =
        #: the domain's built-in assertion set).
        self.suite = suite
        if _monitor is not None:  # the restore path built it already
            self.monitor = _monitor
        elif suite is not None:
            self.monitor = OMG(compile_suite(suite))
        else:
            self.monitor = domain.build_monitor()
        self.state = domain.new_state()
        self.created_at = now
        self.last_used = now
        #: Raw units consumed (≠ items when a unit expands to many).
        self.n_raw = 0
        #: The exception that broke this session, if any.
        self.broken: "Exception | None" = None
        #: Snapshot captured at eviction time (``snapshot_on_evict``).
        self.evict_snapshot: "dict | None" = None

    @property
    def n_items(self) -> int:
        return self.monitor.n_observed

    def _check_usable(self) -> None:
        if self.broken is not None:
            raise BrokenSessionError(
                f"stream {self.stream_id!r} is broken after a failed unit "
                f"({self.broken!r}); evict it and start a fresh session"
            ) from self.broken

    def ingest(self, raw: Any) -> list:
        """Normalize one raw unit and observe its items; fresh records."""
        self._check_usable()
        fresh: list = []
        try:
            for outputs, timestamp in self.domain.item_from_raw(raw, self.state):
                fresh.extend(
                    self.monitor.observe(None, outputs, timestamp=timestamp)
                )
        except Exception as exc:
            self.broken = exc
            raise
        self.n_raw += 1
        return fresh

    def report(self) -> MonitoringReport:
        """This stream's accumulated online report."""
        self._check_usable()
        return self.monitor.online_report()

    def snapshot(self) -> dict:
        """JSON-encodable checkpoint of this session."""
        self._check_usable()
        return {
            "monitor": self.monitor.snapshot(),
            "state": self.domain.state_snapshot(self.state),
            "n_raw": self.n_raw,
        }

    def apply_suite(self, suite: AssertionSuite) -> dict:
        """Hot-reconfigure this session's assertion set (see
        :meth:`repro.core.runtime.OMG.apply_suite`)."""
        self._check_usable()
        diff = self.monitor.apply_suite(suite)
        self.suite = suite
        return diff

    @classmethod
    def restore(
        cls,
        stream_id: str,
        domain: Domain,
        payload: dict,
        now: float,
        suite: "AssertionSuite | None" = None,
    ) -> "StreamSession":
        """Rebuild a session from :meth:`snapshot` output.

        When the monitor payload embeds a declarative suite (every
        suite-compiled runtime's does), the exact snapshotted assertion
        set is rebuilt from it — so a fleet restores correctly even
        across an :meth:`MonitorService.apply_suite` boundary, where the
        service's current template differs from what this stream ran.
        """
        monitor_payload = payload["monitor"]
        if monitor_payload.get("suite") is not None:
            monitor = OMG.from_snapshot(monitor_payload)
            session = cls(
                stream_id, domain, now, suite=monitor.suite, _monitor=monitor
            )
        else:
            session = cls(stream_id, domain, now, suite=suite)
            session.monitor.restore(monitor_payload)
        session.state = domain.state_restore(payload["state"])
        session.n_raw = int(payload["n_raw"])
        return session


@dataclass
class FleetReport:
    """Per-stream reports plus their fleet-wide aggregate.

    ``aggregate`` stacks every stream's severity matrix (rows in session
    creation/LRU-touch order, the order of ``stream_reports``); its
    records carry row indices offset per ``row_offsets`` so they stay
    unambiguous fleet-wide.
    """

    domain: str
    stream_reports: "OrderedDict[str, MonitoringReport]"
    aggregate: MonitoringReport
    row_offsets: dict = field(default_factory=dict)

    def fire_counts(self) -> dict:
        """Fleet-wide assertion name → items with positive severity."""
        return self.aggregate.fire_counts()

    def format_table(self) -> str:
        from repro.utils.tables import format_table

        names = self.aggregate.assertion_names
        rows = []
        for stream_id, report in self.stream_reports.items():
            counts = report.fire_counts()
            rows.append(
                (stream_id, report.n_items, *(counts[n] for n in names),
                 report.total_fires())
            )
        totals = self.aggregate.fire_counts()
        rows.append(
            ("TOTAL", self.aggregate.n_items,
             *(totals[n] for n in names),
             self.aggregate.total_fires())
        )
        return format_table(
            ["Stream", "Items", *names, "Fires"],
            rows,
            title=f"Fleet report — domain {self.domain!r}, "
            f"{len(self.stream_reports)} stream(s)",
        )


def build_fleet_report(
    domain_name: str,
    stream_reports: "OrderedDict[str, MonitoringReport]",
    assertion_names,
) -> FleetReport:
    """Stack per-stream reports into a :class:`FleetReport`.

    The shared aggregation core behind :meth:`MonitorService.fleet_report`
    and the sharded router's cross-shard merge
    (:meth:`repro.fleet.router.FleetRouter`): rows stack in
    ``stream_reports`` order, each stream's records re-indexed by its row
    offset so they stay unambiguous fleet-wide. ``assertion_names`` is
    the column set used when no stream reported anything.
    """
    if stream_reports:
        names = next(iter(stream_reports.values())).assertion_names
    else:
        names = assertion_names
    row_offsets: dict = {}
    offset = 0
    matrices = []
    records: list = []
    for stream_id, report in stream_reports.items():
        row_offsets[stream_id] = offset
        matrices.append(report.severities)
        for record in report.records:
            records.append(
                AssertionRecord(
                    assertion_name=record.assertion_name,
                    item_index=record.item_index + offset,
                    severity=record.severity,
                    context=stream_id,
                )
            )
        offset += report.n_items
    severities = (
        np.vstack(matrices)
        if matrices
        else np.zeros((0, len(names)), dtype=np.float64)
    )
    aggregate = MonitoringReport(
        assertion_names=list(names), severities=severities, records=records
    )
    return FleetReport(
        domain=domain_name,
        stream_reports=stream_reports,
        aggregate=aggregate,
        row_offsets=row_offsets,
    )


class MonitorService:
    """Serve many independent monitored streams of one domain.

    Parameters
    ----------
    domain:
        A registry name (``"av" | "video" | "tvnews" | "ecg"`` or any
        :func:`~repro.domains.registry.register_domain` name) or a
        ready-made :class:`~repro.domains.registry.Domain` instance.
    domain_config:
        The domain's config dataclass; only valid with a name (an
        instance already carries its config).
    config:
        :class:`ServiceConfig`; ``None`` = defaults.
    clock:
        Monotonic time source for LRU/TTL bookkeeping (injectable for
        tests); defaults to :func:`time.monotonic`.

    Examples
    --------
    >>> service = MonitorService("ecg")
    >>> world = service.domain.build_world(seed=0)
    >>> stream = service.domain.iter_stream(world)
    >>> fires = service.ingest("patient-7", next(stream))
    >>> service.report("patient-7").n_items > 0
    True
    """

    def __init__(
        self,
        domain: "Domain | str",
        *,
        domain_config: Any = None,
        config: "ServiceConfig | None" = None,
        clock: "Callable[[], float] | None" = None,
        suite: "AssertionSuite | None" = None,
    ) -> None:
        if isinstance(domain, str):
            domain = get_domain(domain, domain_config)
        elif domain_config is not None:
            raise ValueError(
                "domain_config is only valid with a domain name; a Domain "
                "instance already carries its config"
            )
        if suite is not None and suite.domain and domain.name and suite.domain != domain.name:
            raise ValueError(
                f"suite {suite.name!r} targets domain {suite.domain!r}, "
                f"this service serves {domain.name!r}"
            )
        self.domain = domain
        self.config = config if config is not None else ServiceConfig()
        self._clock = clock if clock is not None else time.monotonic
        #: The declarative suite new sessions monitor with (``None`` =
        #: the domain's built-in set); updated by :meth:`apply_suite`.
        self._suite = suite
        self._sessions: "OrderedDict[str, StreamSession]" = OrderedDict()
        self._fire_actions: list = []
        self._evict_actions: list = []
        self._executor: "ThreadPoolExecutor | None" = None

    @property
    def suite(self) -> "AssertionSuite | None":
        """The suite template new sessions are built with."""
        return self._suite

    # ------------------------------------------------------------------
    # Sessions and eviction
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._sessions)

    def __contains__(self, stream_id: str) -> bool:
        return stream_id in self._sessions

    def stream_ids(self) -> list:
        """Live stream ids, least- to most-recently used."""
        return list(self._sessions)

    def session(self, stream_id: str) -> StreamSession:
        """The session for ``stream_id``, created on first use.

        Accessing a session marks it most-recently used; TTL-expired
        sessions are purged first and, if creating this session pushes
        the count past ``max_sessions``, the least-recently-used other
        session is evicted.
        """
        now = self._clock()
        self._purge_expired(now)
        session = self._sessions.get(stream_id)
        if session is None:
            session = StreamSession(stream_id, self.domain, now, suite=self._suite)
            self._sessions[stream_id] = session
            self._enforce_capacity()
        else:
            self._sessions.move_to_end(stream_id)
        session.last_used = now
        return session

    def evict(self, stream_id: str) -> StreamSession:
        """Drop a session (KeyError if absent); returns it after firing
        ``on_evict`` hooks, so callers can checkpoint it.

        With ``snapshot_on_evict`` the session's restorable snapshot is
        captured first and exposed as ``session.evict_snapshot`` (``None``
        when the session is broken — indeterminate state must not be
        persisted); hand it to :meth:`restore_session` to re-admit the
        stream exactly where it left off.
        """
        session = self._sessions.pop(stream_id)
        if self.config.snapshot_on_evict and session.broken is None:
            session.evict_snapshot = session.snapshot()
        for action in self._evict_actions:
            action(session)
        return session

    def session_snapshot(self, stream_id: str) -> dict:
        """One live stream's restorable snapshot, without evicting it.

        The migration read half: hand the payload to another service's
        :meth:`restore_session` and the stream continues there
        bit-identically. Raises ``KeyError`` when the stream is absent
        (TTL expiry included — snapshotting does not count as use) and
        :class:`BrokenSessionError` for broken sessions.
        """
        self._purge_expired(self._clock())
        return self._sessions[stream_id].snapshot()

    def session_units(self) -> dict:
        """stream_id → raw units consumed, for every live session.

        Broken sessions report their count too (their consumed total is
        still exact — the failed unit never increments it). The fleet
        router uses this to validate a migration/reconfiguration tick
        across shards before touching anything.
        """
        self._purge_expired(self._clock())
        return {
            stream_id: session.n_raw
            for stream_id, session in self._sessions.items()
        }

    def restore_session(self, stream_id: str, payload: dict) -> StreamSession:
        """Re-admit one stream from a session snapshot.

        ``payload`` is what :meth:`StreamSession.snapshot` produced —
        either ``session.evict_snapshot`` or one entry of a fleet
        :meth:`snapshot`. The stream id must not be live (evict it first
        to replace it); the restored session counts as most recently
        used, and the LRU bound is enforced afterwards.
        """
        if stream_id in self._sessions:
            raise ValueError(
                f"stream {stream_id!r} is live; evict it before restoring "
                "a snapshot into its slot"
            )
        now = self._clock()
        self._purge_expired(now)
        session = StreamSession.restore(
            stream_id, self.domain, payload, now, suite=self._suite
        )
        self._sessions[stream_id] = session
        self._enforce_capacity()
        return session

    # ------------------------------------------------------------------
    # Live reconfiguration
    # ------------------------------------------------------------------
    def apply_suite(
        self, suite: AssertionSuite, *, tick: "int | None" = None
    ) -> dict:
        """Hot-reconfigure the whole fleet's assertion set to ``suite``.

        Every live session's runtime is diffed against the new suite at
        its current item boundary (see
        :meth:`repro.core.runtime.OMG.apply_suite`): unchanged entries
        keep their evaluator state and fire history, added entries start
        fresh evaluators (warmed on the bounded recent window, no
        retroactive fire records), removed entries drop their live
        state — their past fires survive wherever ``on_fire`` routed
        them (e.g. a :class:`~repro.improve.fires.FireStore`). New
        sessions created afterwards are compiled from ``suite`` too.

        ``tick`` asserts the raw-unit boundary: when given, every live
        session must have consumed exactly ``tick`` raw units, otherwise
        nothing is changed and a ``ValueError`` names the offender. Fires
        after the boundary are identical to a fleet freshly started on
        the new suite and fast-forwarded through the same pre-boundary
        units (``tests/serve/test_apply_suite.py``), and
        snapshot → restore across the boundary stays bit-identical.

        Returns ``{stream_id: diff}`` with each session's
        added/removed/kept/replaced assertion names. Broken sessions are
        skipped (evict them).
        """
        if suite.domain and self.domain.name and suite.domain != self.domain.name:
            raise ValueError(
                f"suite {suite.name!r} targets domain {suite.domain!r}, "
                f"this service serves {self.domain.name!r}"
            )
        self._purge_expired(self._clock())
        live = [s for s in self._sessions.values() if s.broken is None]
        if tick is not None:
            for session in live:
                if session.n_raw != tick:
                    raise ValueError(
                        f"apply_suite(tick={tick}) is not a raw-unit boundary "
                        f"for stream {session.stream_id!r}, which has consumed "
                        f"{session.n_raw} unit(s)"
                    )
        diffs = {session.stream_id: session.apply_suite(suite) for session in live}
        self._suite = suite
        return diffs

    def _purge_expired(self, now: float) -> None:
        ttl = self.config.session_ttl
        if ttl is None:
            return
        expired = [
            stream_id
            for stream_id, session in self._sessions.items()
            if now - session.last_used > ttl
        ]
        for stream_id in expired:
            # Re-check before each eviction: an ``on_evict`` hook may
            # legally re-enter the service (see ``_dispatch``), and any
            # re-entrant access purges expired sessions itself — so a
            # later id in ``expired`` can already be gone (or even have
            # been re-created and touched) by the time we reach it.
            session = self._sessions.get(stream_id)
            if session is not None and now - session.last_used > ttl:
                self.evict(stream_id)

    def _enforce_capacity(self) -> None:
        limit = self.config.max_sessions
        if limit is None:
            return
        while len(self._sessions) > limit:
            oldest = next(iter(self._sessions))
            self.evict(oldest)

    # ------------------------------------------------------------------
    # Callbacks
    # ------------------------------------------------------------------
    def on_fire(self, action: "Callable[[StreamFire], None]") -> Callable:
        """Register a corrective-action hook; called once per fresh
        record, with stream provenance (:class:`StreamFire`)."""
        self._fire_actions.append(action)
        return action

    def on_evict(self, action: "Callable[[StreamSession], None]") -> Callable:
        """Register an eviction hook (e.g. snapshot the session)."""
        self._evict_actions.append(action)
        return action

    def _dispatch(self, fires: list) -> None:
        # Always runs on the caller's thread (batch workers only collect;
        # fires dispatch after the pool joins), so callbacks may safely
        # re-enter the service — e.g. a corrective action that ingests a
        # derived event into another stream.
        for fire in fires:
            for action in self._fire_actions:
                action(fire)

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def ingest(self, stream_id: str, raw: Any) -> list:
        """Feed one raw unit to one stream; returns :class:`StreamFire` s."""
        records = self.session(stream_id).ingest(raw)
        fires = [StreamFire(stream_id, record) for record in records]
        self._dispatch(fires)
        return fires

    def ingest_batch(
        self, pairs: list, *, parallel: "bool | None" = None
    ) -> list:
        """Feed many ``(stream_id, raw)`` pairs; returns fires in pair order.

        Pairs are grouped by stream (preserving each stream's arrival
        order); with ``parallel`` (default: the service config) the
        groups fan out over a shared thread pool — sessions are
        independent, so results are bit-identical to serial ingestion.
        ``on_fire`` hooks run after the whole batch, in pair order.

        When stream groups fail, a :class:`BatchIngestError` names every
        failed stream (not just the first) and maps each to its
        exception; the failed sessions are broken (fail-stop), sibling
        streams' fires were already dispatched.
        """
        by_position, errors, _positions, fires = self._run_batch(pairs, parallel)
        if errors:
            raise BatchIngestError(errors)
        return fires

    def ingest_batch_outcomes(
        self, pairs: list, *, parallel: "bool | None" = None
    ) -> list:
        """Like :meth:`ingest_batch`, but never raises for per-stream
        failures: returns one :class:`PairOutcome` per pair, in order.

        The structured form the network front-end serves: successful
        pairs carry their fires, the pair that broke its stream carries
        the exception, and later pairs of that stream in the same batch
        are marked ``skipped`` (never attempted — the session was already
        broken). Fires dispatch exactly as in :meth:`ingest_batch`.
        """
        pairs = list(pairs)
        by_position, errors, failed_positions, _fires = self._run_batch(
            pairs, parallel
        )
        outcomes = []
        for position, (stream_id, _raw) in enumerate(pairs):
            if position in by_position:
                outcomes.append(
                    PairOutcome(
                        stream_id,
                        fires=[
                            StreamFire(stream_id, record)
                            for record in by_position[position]
                        ],
                    )
                )
            else:
                outcomes.append(
                    PairOutcome(
                        stream_id,
                        error=errors[stream_id],
                        skipped=position != failed_positions[stream_id],
                    )
                )
        return outcomes

    def _run_batch(self, pairs: list, parallel: "bool | None") -> tuple:
        """Shared batch core: group, fan out, dispatch fires.

        Returns ``(by_position, errors, failed_positions, fires)`` where
        ``errors`` maps every failed stream id to its exception (group
        order) and ``failed_positions`` maps it to the pair position that
        actually raised (later positions of that stream were skipped).
        """
        pairs = list(pairs)
        if parallel is None:
            parallel = self.config.parallel
        groups: "OrderedDict[str, list]" = OrderedDict()
        for position, (stream_id, raw) in enumerate(pairs):
            groups.setdefault(stream_id, []).append((position, raw))
        limit = self.config.max_sessions
        if limit is not None and len(groups) > limit:
            raise ValueError(
                f"batch touches {len(groups)} distinct streams but "
                f"max_sessions={limit}; the LRU bound would evict sessions "
                "mid-batch"
            )
        # Create/touch serially (the LRU map is not thread-safe), then
        # fan out: each worker owns exactly one session. Existing batch
        # members are touched *before* any new session is created, so a
        # creation-triggered LRU eviction can only hit non-members — a
        # batch within the size guard never evicts its own sessions.
        sessions = {
            stream_id: self.session(stream_id)
            for stream_id in groups
            if stream_id in self._sessions
        }
        for stream_id in groups:
            if stream_id not in sessions:
                sessions[stream_id] = self.session(stream_id)

        def run_group(stream_id: str) -> tuple:
            # Errors are captured, not raised, so one malformed unit on
            # one stream cannot suppress the corrective-action dispatch
            # for sibling streams whose units were already observed.
            done: list = []
            try:
                for position, raw in groups[stream_id]:
                    done.append((position, sessions[stream_id].ingest(raw)))
            except Exception as exc:  # re-raised below, after dispatch
                return done, exc
            return done, None

        if parallel and len(groups) > 1:
            if self._executor is None:
                # Reused across batches; idle workers are joined at
                # interpreter exit, so no explicit shutdown is needed.
                self._executor = ThreadPoolExecutor(
                    max_workers=self.config.max_workers,
                    thread_name_prefix="monitor-service",
                )
            per_group = list(self._executor.map(run_group, groups))
        else:
            per_group = [run_group(stream_id) for stream_id in groups]

        by_position: dict = {}
        errors: "OrderedDict[str, Exception]" = OrderedDict()
        failed_positions: dict = {}
        for stream_id, (done, error) in zip(groups, per_group):
            for position, records in done:
                by_position[position] = records
            if error is not None:
                errors[stream_id] = error
                # The group entry after the last completed one raised.
                failed_positions[stream_id] = groups[stream_id][len(done)][0]
        fires = [
            StreamFire(stream_id, record)
            for position, (stream_id, _raw) in enumerate(pairs)
            for record in by_position.get(position, ())
        ]
        self._dispatch(fires)
        return by_position, errors, failed_positions, fires

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self, stream_id: str) -> MonitoringReport:
        """One stream's accumulated online report.

        Raises KeyError when the stream is absent — including when it
        just TTL-expired (reading a report does not count as use).
        """
        self._purge_expired(self._clock())
        return self._sessions[stream_id].report()

    def fleet_report(self) -> FleetReport:
        """Every live stream's report plus the stacked fleet aggregate.

        Broken sessions (see :class:`StreamSession`) are excluded — their
        state is indeterminate; evict them to clear the slot.
        """
        self._purge_expired(self._clock())
        stream_reports: "OrderedDict[str, MonitoringReport]" = OrderedDict()
        for stream_id, session in self._sessions.items():
            if session.broken is None:
                stream_reports[stream_id] = session.report()
        if self._suite is not None:
            names = self._suite.assertion_names()
        else:
            names = self.domain.build_monitor().database.names()
        return build_fleet_report(self.domain.name, stream_reports, names)

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Checkpoint every live session as one JSON payload.

        TTL-expired sessions are purged first (their ``on_evict`` hooks
        fire), so a checkpoint can never resurrect a session the TTL
        already retired. Broken sessions are excluded — their state is
        indeterminate and must not be persisted.
        """
        self._purge_expired(self._clock())
        payload = {
            "format": SERVICE_SNAPSHOT_FORMAT,
            "domain": self.domain.name,
            "sessions": [
                [stream_id, session.snapshot()]
                for stream_id, session in self._sessions.items()
                if session.broken is None
            ],
        }
        if self._suite is not None:
            # The template for sessions created after the restore; each
            # live session's monitor payload embeds its own suite too.
            payload["suite"] = to_jsonable(self._suite)
        return payload

    def restore(self, payload: dict) -> None:
        """Replace live sessions with the fleet captured by :meth:`snapshot`.

        The service must be built for the same domain (same name, same
        config) the snapshot was taken with. Live sessions the snapshot
        replaces are evicted first (``on_evict`` hooks fire), so an
        on-evict persistence layer sees them before they are dropped.
        """
        fmt = payload.get("format")
        if fmt != SERVICE_SNAPSHOT_FORMAT:
            raise ValueError(
                f"unsupported service snapshot format {fmt!r} "
                f"(expected {SERVICE_SNAPSHOT_FORMAT})"
            )
        if "domain" not in payload or "sessions" not in payload:
            raise ValueError(
                "not a MonitorService snapshot: payload lacks domain/sessions "
                "(an OMG-level snapshot restores via OMG.restore, not here)"
            )
        if payload["domain"] != self.domain.name:
            raise ValueError(
                f"snapshot is for domain {payload['domain']!r}, this service "
                f"serves {self.domain.name!r}"
            )
        now = self._clock()
        if payload.get("suite") is not None:
            self._suite = from_jsonable(payload["suite"])
        restored: "OrderedDict[str, StreamSession]" = OrderedDict()
        for stream_id, session_payload in payload["sessions"]:
            restored[stream_id] = StreamSession.restore(
                stream_id, self.domain, session_payload, now, suite=self._suite
            )
        for stream_id in list(self._sessions):
            if stream_id in self._sessions:  # a hook may have evicted it
                self.evict(stream_id)
        if self._sessions:
            # An ``on_evict`` hook created sessions while the old fleet
            # was being torn down; assigning ``restored`` would silently
            # clobber them. There is no principled merge (the hook's
            # session and the snapshot may claim the same stream id with
            # different histories), so refuse loudly.
            raise RuntimeError(
                "on_evict hooks created session(s) "
                f"{list(self._sessions)} while restore was tearing down "
                "the old fleet; they would be silently discarded — do not "
                "re-create sessions from eviction hooks during restore"
            )
        self._sessions = restored
        # A snapshot may hold more sessions than this service's LRU bound
        # allows; evict from the least-recently-used end (snapshot order)
        # so the configured memory bound holds immediately.
        self._enforce_capacity()

    @classmethod
    def from_snapshot(
        cls,
        payload: dict,
        *,
        domain_config: Any = None,
        config: "ServiceConfig | None" = None,
        clock: "Callable[[], float] | None" = None,
    ) -> "MonitorService":
        """Build a service for the payload's domain and restore into it."""
        service = cls(
            payload["domain"], domain_config=domain_config, config=config, clock=clock
        )
        service.restore(payload)
        return service
