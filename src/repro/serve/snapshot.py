"""File persistence for :class:`~repro.serve.MonitorService` snapshots.

A service snapshot is already plain JSON-encodable primitives (every
float round-trips bit-exactly; see :mod:`repro.utils.codec`), so
persistence is just ``json.dump``/``load`` plus a tiny header check.
Writes are atomic (temp file + rename) so a crash mid-checkpoint never
leaves a truncated snapshot behind.
"""

from __future__ import annotations

from typing import Any

from repro.serve.service import (
    SERVICE_SNAPSHOT_FORMAT,
    MonitorService,
    ServiceConfig,
)
from repro.utils.io import atomic_write_json, read_json


def save_service_snapshot(
    service: MonitorService, path: str, *, extra: "dict | None" = None
) -> dict:
    """Snapshot ``service`` and write it to ``path`` atomically.

    ``extra`` keys are merged into the payload top level (callers stash
    provenance there, e.g. the CLI's seed); :meth:`MonitorService.restore`
    ignores keys it does not know. Returns the payload that was written.
    """
    payload = service.snapshot()
    if extra:
        for key in extra:
            if key in payload:
                raise ValueError(f"extra key {key!r} collides with the payload")
        payload.update(extra)
    atomic_write_json(payload, path)
    return payload


def load_snapshot_payload(path: str) -> dict:
    """Read and validate a snapshot payload from ``path``.

    Checks the structural keys too, not just the format tag — an
    :meth:`OMG.snapshot` payload also carries ``format`` but has no
    ``domain``/``sessions``, and must be rejected cleanly here rather
    than crash deeper in :meth:`MonitorService.restore`.
    """
    payload = read_json(path)
    if (
        not isinstance(payload, dict)
        or payload.get("format") != SERVICE_SNAPSHOT_FORMAT
        or "domain" not in payload
        or "sessions" not in payload
    ):
        raise ValueError(
            f"{path} is not a MonitorService snapshot "
            f"(format {SERVICE_SNAPSHOT_FORMAT} with domain/sessions)"
        )
    return payload


def load_service_snapshot(
    path: str,
    *,
    domain_config: Any = None,
    config: "ServiceConfig | None" = None,
    clock=None,
) -> MonitorService:
    """Rebuild a service (and its whole fleet) from a snapshot file."""
    payload = load_snapshot_payload(path)
    return MonitorService.from_snapshot(
        payload, domain_config=domain_config, config=config, clock=clock
    )
