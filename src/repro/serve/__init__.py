"""The serving layer: many monitored streams over one ``Domain`` contract.

- :class:`MonitorService` — keyed multi-stream sessions with batched
  thread fan-out, LRU/TTL eviction, fleet reporting, fire routing with
  stream provenance, and bit-exact snapshot/restore;
- :func:`save_service_snapshot` / :func:`load_service_snapshot` — JSON
  checkpoint files (what ``python -m repro stream --snapshot`` writes).

See :mod:`repro.domains.registry` for the per-domain contract this layer
drives, and the README's "Serving API" section for a quickstart.
"""

from repro.serve.service import (
    FleetReport,
    MonitorService,
    ServiceConfig,
    StreamFire,
    StreamSession,
)
from repro.serve.snapshot import (
    load_service_snapshot,
    load_snapshot_payload,
    save_service_snapshot,
)

__all__ = [
    "FleetReport",
    "MonitorService",
    "ServiceConfig",
    "StreamFire",
    "StreamSession",
    "load_service_snapshot",
    "load_snapshot_payload",
    "save_service_snapshot",
]
