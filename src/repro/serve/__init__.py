"""The serving layer: many monitored streams over one ``Domain`` contract.

- :class:`MonitorService` — keyed multi-stream sessions with batched
  thread fan-out, LRU/TTL eviction, fleet reporting, fire routing with
  stream provenance, and bit-exact snapshot/restore;
- :class:`MonitorServer` / :class:`ServiceClient` — the asyncio network
  front-end: newline-delimited JSON over TCP with request batching,
  per-stream ordering, bounded-queue backpressure, and typed error
  payloads (``python -m repro serve``);
- :func:`run_loadtest` — closed/open-loop load harness with latency
  percentiles and a saturation sweep (``python -m repro loadtest``);
- :func:`save_service_snapshot` / :func:`load_service_snapshot` — JSON
  checkpoint files (what ``python -m repro stream --snapshot`` writes).

See :mod:`repro.domains.registry` for the per-domain contract this layer
drives, and the README's "Serving API" and "Network serving & load
testing" sections for quickstarts.
"""

from repro.serve.loadtest import (
    LoadTestConfig,
    LoadTestPoint,
    LoadTestResult,
    run_loadtest,
    write_bench,
)
from repro.serve.net import (
    ConnectionLostError,
    MonitorServer,
    ReconnectingClient,
    ServerConfig,
    ServerStats,
    ServiceClient,
    ServiceError,
)
from repro.serve.service import (
    BatchIngestError,
    BrokenSessionError,
    FleetReport,
    MonitorService,
    PairOutcome,
    ServiceConfig,
    StreamFire,
    StreamSession,
    build_fleet_report,
)
from repro.serve.snapshot import (
    load_service_snapshot,
    load_snapshot_payload,
    save_service_snapshot,
)

__all__ = [
    "BatchIngestError",
    "BrokenSessionError",
    "ConnectionLostError",
    "FleetReport",
    "LoadTestConfig",
    "LoadTestPoint",
    "LoadTestResult",
    "MonitorServer",
    "MonitorService",
    "PairOutcome",
    "ReconnectingClient",
    "ServerConfig",
    "ServerStats",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "StreamFire",
    "StreamSession",
    "build_fleet_report",
    "load_service_snapshot",
    "load_snapshot_payload",
    "run_loadtest",
    "save_service_snapshot",
    "write_bench",
]
