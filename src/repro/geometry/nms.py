"""Greedy non-maximum suppression over scored boxes."""

from __future__ import annotations

import numpy as np

from repro.geometry.box2d import boxes_to_array
from repro.geometry.iou import iou_matrix


def non_max_suppression(
    boxes,
    scores: np.ndarray,
    iou_threshold: float = 0.45,
    *,
    class_ids: "np.ndarray | None" = None,
) -> np.ndarray:
    """Return indices of boxes kept by greedy NMS, sorted by score.

    Parameters
    ----------
    boxes:
        ``(n, 4)`` array or list of :class:`~repro.geometry.box2d.Box2D`.
    scores:
        ``(n,)`` confidence scores.
    iou_threshold:
        Boxes overlapping a kept box above this IoU are suppressed.
    class_ids:
        Optional ``(n,)`` integer class ids. When given, suppression is
        applied per class (boxes of different classes never suppress each
        other) — the convention used by most detection pipelines.
    """
    arr = boxes_to_array(boxes)
    scores = np.asarray(scores, dtype=np.float64)
    if arr.shape[0] != scores.shape[0]:
        raise ValueError(f"{arr.shape[0]} boxes but {scores.shape[0]} scores")
    n = arr.shape[0]
    if n == 0:
        return np.zeros(0, dtype=np.intp)

    if class_ids is not None:
        class_ids = np.asarray(class_ids)
        if class_ids.shape[0] != n:
            raise ValueError(f"{n} boxes but {class_ids.shape[0]} class ids")
        keep: list[int] = []
        for cls in np.unique(class_ids):
            idx = np.flatnonzero(class_ids == cls)
            kept = non_max_suppression(arr[idx], scores[idx], iou_threshold)
            keep.extend(idx[kept].tolist())
        keep_arr = np.array(keep, dtype=np.intp)
        return keep_arr[np.argsort(-scores[keep_arr], kind="stable")]

    order = np.argsort(-scores, kind="stable")
    iou = iou_matrix(arr, arr)
    suppressed = np.zeros(n, dtype=bool)
    keep = []
    for i in order:
        if suppressed[i]:
            continue
        keep.append(int(i))
        suppressed |= iou[i] > iou_threshold
        suppressed[i] = True  # a box does not suppress itself from `keep`
    return np.array(keep, dtype=np.intp)
