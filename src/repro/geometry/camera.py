"""Pinhole camera model and 3-D → 2-D box projection.

The ``agree`` assertion from the paper (§2.2, §5.1) "projects the 3D boxes
onto the 2D camera plane to check for consistency" with the camera model's
2-D detections. This module implements that projection for real.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.box2d import Box2D
from repro.geometry.box3d import Box3D, box3d_corners
from repro.utils.codec import register_result_type


@register_result_type
@dataclass(frozen=True)
class PinholeCamera:
    """A forward-facing pinhole camera in the ego frame.

    The ego frame is x forward, y left, z up; the image frame is u
    rightward, v downward with the origin at the top-left. ``focal`` is
    expressed in pixels.

    Attributes
    ----------
    width, height:
        Image size in pixels.
    focal:
        Focal length in pixels (same for u and v).
    cz:
        Camera height above the LIDAR origin, in meters.
    """

    width: int = 160
    height: int = 96
    focal: float = 110.0
    cz: float = 0.0

    @property
    def cu(self) -> float:
        """Principal point u (image center)."""
        return self.width / 2.0

    @property
    def cv(self) -> float:
        """Principal point v (image center)."""
        return self.height / 2.0

    def project_points(self, points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Project ``(n, 3)`` ego-frame points into the image.

        Returns
        -------
        (uv, in_front):
            ``uv`` is ``(n, 2)`` pixel coordinates (undefined rows where
            ``in_front`` is False); ``in_front`` marks points with positive
            depth (x > epsilon).
        """
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[1] != 3:
            raise ValueError(f"points must be (n, 3), got {pts.shape}")
        depth = pts[:, 0]
        in_front = depth > 1e-6
        safe_depth = np.where(in_front, depth, 1.0)
        # Ego y (left) maps to -u; ego z (up) maps to -v.
        u = self.cu - self.focal * pts[:, 1] / safe_depth
        v = self.cv - self.focal * (pts[:, 2] - self.cz) / safe_depth
        return np.stack([u, v], axis=1), in_front


def project_box3d_to_2d(box: Box3D, camera: PinholeCamera) -> "Box2D | None":
    """Project a 3-D box to its axis-aligned 2-D image-plane bound.

    Returns ``None`` when the box is entirely behind the camera or its
    projection falls completely outside the image.
    """
    corners = box3d_corners(box)
    uv, in_front = camera.project_points(corners)
    if not np.any(in_front):
        return None
    uv = uv[in_front]
    x1, y1 = uv.min(axis=0)
    x2, y2 = uv.max(axis=0)
    # Clip to the image; reject projections with no visible extent.
    x1c, x2c = max(x1, 0.0), min(x2, float(camera.width))
    y1c, y2c = max(y1, 0.0), min(y2, float(camera.height))
    if x2c - x1c < 1e-6 or y2c - y1c < 1e-6:
        return None
    return Box2D(x1c, y1c, x2c, y2c, label=box.label, score=box.score)
