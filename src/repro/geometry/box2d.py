"""Axis-aligned 2-D bounding boxes.

Boxes follow the ``(x1, y1, x2, y2)`` corner convention with ``x2 > x1``
and ``y2 > y1``; arrays of boxes have shape ``(n, 4)``. Image coordinates
put the origin at the top-left, x rightward, y downward, matching the
rendering convention in :mod:`repro.worlds`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.codec import register_result_type


@register_result_type
@dataclass(frozen=True)
class Box2D:
    """A single 2-D box with optional class label and confidence score.

    Attributes
    ----------
    x1, y1, x2, y2:
        Corner coordinates, ``x1 < x2`` and ``y1 < y2``.
    label:
        Class name (e.g., ``"car"``). Empty string when class-agnostic.
    score:
        Model confidence in ``[0, 1]``; ground-truth boxes use 1.0.
    """

    x1: float
    y1: float
    x2: float
    y2: float
    label: str = ""
    score: float = 1.0

    def __post_init__(self) -> None:
        if not (self.x2 > self.x1 and self.y2 > self.y1):
            raise ValueError(
                f"degenerate box: ({self.x1}, {self.y1}, {self.x2}, {self.y2})"
            )

    @property
    def width(self) -> float:
        return self.x2 - self.x1

    @property
    def height(self) -> float:
        return self.y2 - self.y1

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> tuple[float, float]:
        return ((self.x1 + self.x2) / 2.0, (self.y1 + self.y2) / 2.0)

    def as_array(self) -> np.ndarray:
        """Return the corner coordinates as a ``(4,)`` float array."""
        return np.array([self.x1, self.y1, self.x2, self.y2], dtype=np.float64)

    def with_label(self, label: str) -> "Box2D":
        """Return a copy of this box with a different class label."""
        return Box2D(self.x1, self.y1, self.x2, self.y2, label, self.score)

    def with_score(self, score: float) -> "Box2D":
        """Return a copy of this box with a different confidence score."""
        return Box2D(self.x1, self.y1, self.x2, self.y2, self.label, score)

    def shifted(self, dx: float, dy: float) -> "Box2D":
        """Return a copy translated by ``(dx, dy)``."""
        return Box2D(
            self.x1 + dx, self.y1 + dy, self.x2 + dx, self.y2 + dy, self.label, self.score
        )


def make_box(cx: float, cy: float, width: float, height: float, label: str = "", score: float = 1.0) -> Box2D:
    """Build a :class:`Box2D` from center coordinates and size."""
    return Box2D(
        cx - width / 2.0, cy - height / 2.0, cx + width / 2.0, cy + height / 2.0, label, score
    )


def boxes_to_array(boxes: "list[Box2D] | np.ndarray") -> np.ndarray:
    """Stack boxes into an ``(n, 4)`` float array (empty → ``(0, 4)``)."""
    if isinstance(boxes, np.ndarray):
        arr = np.asarray(boxes, dtype=np.float64)
        if arr.size == 0:
            return arr.reshape(0, 4)
        if arr.ndim == 1:
            arr = arr.reshape(1, 4)
        if arr.shape[1] != 4:
            raise ValueError(f"box array must have 4 columns, got shape {arr.shape}")
        return arr
    if len(boxes) == 0:
        return np.zeros((0, 4), dtype=np.float64)
    return np.stack([b.as_array() for b in boxes])


def box_area(boxes: np.ndarray) -> np.ndarray:
    """Vectorized area of an ``(n, 4)`` box array."""
    boxes = boxes_to_array(boxes)
    return (boxes[:, 2] - boxes[:, 0]) * (boxes[:, 3] - boxes[:, 1])


def clip_boxes(boxes: np.ndarray, width: float, height: float) -> np.ndarray:
    """Clip an ``(n, 4)`` box array to the image bounds ``[0, width] × [0, height]``."""
    boxes = boxes_to_array(boxes).copy()
    boxes[:, [0, 2]] = np.clip(boxes[:, [0, 2]], 0.0, float(width))
    boxes[:, [1, 3]] = np.clip(boxes[:, [1, 3]], 0.0, float(height))
    return boxes
