"""Geometry substrate: 2-D/3-D boxes, IoU, NMS, and camera projection.

These primitives back the video-analytics and autonomous-vehicle domains:
the ``multibox``/``flicker``/``appear`` assertions reason about 2-D box
overlap, and the ``agree`` assertion projects 3-D LIDAR detections onto the
camera plane (§2.2 of the paper) before checking overlap with 2-D camera
detections.
"""

from repro.geometry.box2d import (
    Box2D,
    box_area,
    boxes_to_array,
    clip_boxes,
    make_box,
)
from repro.geometry.box3d import Box3D, box3d_corners
from repro.geometry.camera import PinholeCamera, project_box3d_to_2d
from repro.geometry.iou import iou_matrix, iou_pairwise, match_boxes
from repro.geometry.nms import non_max_suppression

__all__ = [
    "Box2D",
    "Box3D",
    "PinholeCamera",
    "box_area",
    "box3d_corners",
    "boxes_to_array",
    "clip_boxes",
    "iou_matrix",
    "iou_pairwise",
    "make_box",
    "match_boxes",
    "non_max_suppression",
    "project_box3d_to_2d",
]
