"""Vectorized intersection-over-union and greedy box matching."""

from __future__ import annotations

import numpy as np

from repro.geometry.box2d import boxes_to_array


def iou_matrix(boxes_a, boxes_b) -> np.ndarray:
    """Pairwise IoU between two box sets.

    Parameters
    ----------
    boxes_a, boxes_b:
        ``(n, 4)`` / ``(m, 4)`` arrays (or lists of :class:`Box2D`).

    Returns
    -------
    numpy.ndarray
        ``(n, m)`` matrix of IoU values in ``[0, 1]``.
    """
    a = boxes_to_array(boxes_a)
    b = boxes_to_array(boxes_b)
    if a.shape[0] == 0 or b.shape[0] == 0:
        return np.zeros((a.shape[0], b.shape[0]), dtype=np.float64)

    # Broadcast to (n, m) intersection rectangles.
    x1 = np.maximum(a[:, None, 0], b[None, :, 0])
    y1 = np.maximum(a[:, None, 1], b[None, :, 1])
    x2 = np.minimum(a[:, None, 2], b[None, :, 2])
    y2 = np.minimum(a[:, None, 3], b[None, :, 3])

    inter = np.clip(x2 - x1, 0.0, None) * np.clip(y2 - y1, 0.0, None)
    area_a = (a[:, 2] - a[:, 0]) * (a[:, 3] - a[:, 1])
    area_b = (b[:, 2] - b[:, 0]) * (b[:, 3] - b[:, 1])
    union = area_a[:, None] + area_b[None, :] - inter
    with np.errstate(divide="ignore", invalid="ignore"):
        iou = np.where(union > 0, inter / union, 0.0)
    return iou


def iou_pairwise(boxes_a, boxes_b) -> np.ndarray:
    """Element-wise IoU of two equal-length box sets → ``(n,)`` array."""
    a = boxes_to_array(boxes_a)
    b = boxes_to_array(boxes_b)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    if a.shape[0] == 0:
        return np.zeros(0, dtype=np.float64)
    x1 = np.maximum(a[:, 0], b[:, 0])
    y1 = np.maximum(a[:, 1], b[:, 1])
    x2 = np.minimum(a[:, 2], b[:, 2])
    y2 = np.minimum(a[:, 3], b[:, 3])
    inter = np.clip(x2 - x1, 0.0, None) * np.clip(y2 - y1, 0.0, None)
    area_a = (a[:, 2] - a[:, 0]) * (a[:, 3] - a[:, 1])
    area_b = (b[:, 2] - b[:, 0]) * (b[:, 3] - b[:, 1])
    union = area_a + area_b - inter
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.where(union > 0, inter / union, 0.0)


def match_boxes(boxes_a, boxes_b, iou_threshold: float = 0.5) -> list[tuple[int, int, float]]:
    """Greedy one-to-one matching between two box sets by descending IoU.

    Standard evaluation-style matcher: repeatedly take the highest-IoU
    unmatched pair above ``iou_threshold``.

    Returns
    -------
    list of ``(index_a, index_b, iou)`` triples.
    """
    iou = iou_matrix(boxes_a, boxes_b)
    matches: list[tuple[int, int, float]] = []
    if iou.size == 0:
        return matches
    iou = iou.copy()
    while True:
        flat = int(np.argmax(iou))
        i, j = np.unravel_index(flat, iou.shape)
        best = iou[i, j]
        if best < iou_threshold or best <= 0:
            break
        matches.append((int(i), int(j), float(best)))
        iou[i, :] = -1.0
        iou[:, j] = -1.0
    return matches
