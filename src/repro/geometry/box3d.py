"""Axis-yaw 3-D bounding boxes for the autonomous-vehicle domain.

The coordinate frame follows the ego vehicle: x forward, y left, z up,
origin at the LIDAR sensor. A box is parameterized by its center, size,
and yaw (rotation about z).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.codec import register_result_type


@register_result_type
@dataclass(frozen=True)
class Box3D:
    """A 3-D box with class label and confidence.

    Attributes
    ----------
    cx, cy, cz:
        Center in ego coordinates (meters).
    length, width, height:
        Extent along the box's local x (heading), y, z axes.
    yaw:
        Heading angle in radians about the z axis (0 = facing +x).
    label:
        Class name; empty when class-agnostic.
    score:
        Confidence in ``[0, 1]``; 1.0 for ground truth.
    """

    cx: float
    cy: float
    cz: float
    length: float
    width: float
    height: float
    yaw: float = 0.0
    label: str = ""
    score: float = 1.0

    def __post_init__(self) -> None:
        if min(self.length, self.width, self.height) <= 0:
            raise ValueError(
                f"degenerate 3-D box size ({self.length}, {self.width}, {self.height})"
            )

    @property
    def center(self) -> np.ndarray:
        return np.array([self.cx, self.cy, self.cz], dtype=np.float64)

    @property
    def volume(self) -> float:
        return self.length * self.width * self.height

    def with_score(self, score: float) -> "Box3D":
        """Return a copy with a different confidence score."""
        return Box3D(
            self.cx, self.cy, self.cz, self.length, self.width, self.height,
            self.yaw, self.label, score,
        )


def box3d_corners(box: Box3D) -> np.ndarray:
    """Return the 8 corners of a :class:`Box3D` as an ``(8, 3)`` array.

    Corner order: the four bottom corners counter-clockwise (viewed from
    above) followed by the four top corners in the same order.
    """
    dx, dy, dz = box.length / 2.0, box.width / 2.0, box.height / 2.0
    local = np.array(
        [
            [+dx, +dy, -dz],
            [-dx, +dy, -dz],
            [-dx, -dy, -dz],
            [+dx, -dy, -dz],
            [+dx, +dy, +dz],
            [-dx, +dy, +dz],
            [-dx, -dy, +dz],
            [+dx, -dy, +dz],
        ],
        dtype=np.float64,
    )
    c, s = np.cos(box.yaw), np.sin(box.yaw)
    rot = np.array([[c, -s, 0.0], [s, c, 0.0], [0.0, 0.0, 1.0]])
    return local @ rot.T + box.center


def bev_iou_axis_aligned(a: Box3D, b: Box3D) -> float:
    """Approximate bird's-eye-view IoU using axis-aligned footprints.

    Footprints are the axis-aligned bounds of the rotated corners — a
    standard cheap approximation that is exact for yaw ∈ {0, π/2, π, …}.
    """
    fa = _footprint(a)
    fb = _footprint(b)
    x1 = max(fa[0], fb[0])
    y1 = max(fa[1], fb[1])
    x2 = min(fa[2], fb[2])
    y2 = min(fa[3], fb[3])
    inter = max(0.0, x2 - x1) * max(0.0, y2 - y1)
    area_a = (fa[2] - fa[0]) * (fa[3] - fa[1])
    area_b = (fb[2] - fb[0]) * (fb[3] - fb[1])
    union = area_a + area_b - inter
    return inter / union if union > 0 else 0.0


def _footprint(box: Box3D) -> tuple[float, float, float, float]:
    corners = box3d_corners(box)[:4, :2]
    return (
        float(corners[:, 0].min()),
        float(corners[:, 1].min()),
        float(corners[:, 0].max()),
        float(corners[:, 1].max()),
    )
